package core

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Degradation counters: factorization attempts that failed, and how many of
// those were answered by escalating the nugget rather than giving up.
var (
	cntFactorFail      = obs.GetCounter("core.factor.fail")
	cntNuggetEscalated = obs.GetCounter("core.nugget.escalated")
)

// cntFactorRuns counts actual factorization executions (assembly + Cholesky)
// across all backends. The serving regression "predict-many after fit-once
// factors exactly once" is asserted against this counter.
var cntFactorRuns = obs.GetCounter("core.factor.runs")

// maxNuggetEscalations bounds the diagonal-regularization ladder: after this
// many ×NuggetEscalation steps a breakdown is reported, not papered over.
const maxNuggetEscalations = 3

// retryableError is the RetryPolicy filter shared by all backends: a
// non-positive-definite pivot is a property of θ, not of the execution, so
// replaying the task cannot help — everything else (injected panics, real
// transients) is worth a restore-and-retry.
func retryableError(err error) bool {
	return !errors.Is(err, la.ErrNotPositiveDefinite)
}

// modeFactorizer is what a shared-memory mode contributes to localBackend:
// one assemble-and-factor execution at a fixed nugget, reusing whatever
// per-problem state the mode caches on itself (Σ buffers, tile shells, task
// graphs). Everything else — the escalation ladder, likelihood formulas,
// solve/halve-solve plumbing, tracing, diagnostics — is mode-independent and
// lives on localBackend.
type modeFactorizer interface {
	factorizeOnce(e *localBackend, k *cov.Kernel, nugget float64) (Factor, error)
}

// localBackend is the shared-memory Backend scaffolding: it owns the
// per-problem caches one likelihood evaluation needs so the optimizer's
// dozens of evaluations inside Fit reuse them instead of reallocating per
// iteration. The mode-specific state (what exactly is cached and how Σ is
// assembled and factored) is delegated to the embedded modeFactorizer; see
// backend_dense.go / backend_tile.go / backend_tlr.go / backend_hodlr.go for
// the four registrations.
//
// A localBackend is NOT safe for concurrent use; the factor returned by one
// evaluation aliases cached buffers and is invalidated by the next one.
type localBackend struct {
	p   *Problem
	cfg Config
	inj *chaos.Injector // nil unless Config.Chaos is set

	fac modeFactorizer

	// Graceful-degradation bookkeeping (read by Session.Metrics and copied
	// into LikResult diagnostics).
	diag Diagnostics

	y []float64 // rhs scratch

	// gen counts factorization executions. Factors returned by Factorize
	// alias the cached buffers, so a factor is valid only while gen is
	// unchanged — Session's predict cache compares generations before
	// reusing one across calls.
	gen uint64

	// trace switches graph executions to ExecuteTraced; lastTrace keeps the
	// most recent execution's trace for Session.Metrics. FullBlock has no
	// task graph, so lastTrace stays nil in that mode.
	trace     bool
	lastTrace *runtime.Trace
}

// newLocalBackend wraps a mode's factorizer in the shared scaffolding.
func newLocalBackend(p *Problem, cfg Config, inj *chaos.Injector, fac modeFactorizer) *localBackend {
	return &localBackend{p: p, cfg: cfg.withDefaults(), inj: inj, fac: fac}
}

func (e *localBackend) Mode() Mode               { return e.cfg.Mode }
func (e *localBackend) Diagnostics() Diagnostics { return e.diag }
func (e *localBackend) Generation() uint64       { return e.gen }
func (e *localBackend) EnableTracing()           { e.trace = true }
func (e *localBackend) Trace() *runtime.Trace    { return e.lastTrace }

// Close releases whatever the mode state holds outside the Go heap (the TLR
// out-of-core spill file); modes without external resources make it a no-op.
func (e *localBackend) Close() error {
	if c, ok := e.fac.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// storeStater is the optional capability of mode states that run against an
// out-of-core tile store (currently only tlrState with MemBudget > 0).
type storeStater interface {
	storeStats() (highWater, spilled int64, ok bool)
}

func (e *localBackend) storeStats() (int64, int64, bool) {
	if ss, ok := e.fac.(storeStater); ok {
		return ss.storeStats()
	}
	return 0, 0, false
}

// run executes a cached task graph, recording a trace when enabled. The
// options carry the session's retry policy and (when chaos is armed) the
// fault-injection hook.
func (e *localBackend) run(g *runtime.Graph) error {
	opt := runtime.ExecOptions{
		Workers: e.cfg.Workers,
		Retry: runtime.RetryPolicy{
			Attempts:  e.cfg.MaxRetries,
			Retryable: retryableError,
		},
	}
	if e.inj != nil {
		opt.Inject = e.inj.TaskHook
	}
	if !e.trace {
		return g.Execute(opt)
	}
	tr, err := g.ExecuteTraced(opt)
	e.lastTrace = tr
	return err
}

// Factorize assembles and factors Σ, escalating the nugget geometrically on
// Cholesky breakdowns: a non-positive-definite pivot retries with the
// diagonal regularization multiplied by Config.NuggetEscalation, up to
// maxNuggetEscalations times, before the failure is surfaced. The nugget
// actually used and the retry count land in the backend's diagnostics.
func (e *localBackend) Factorize(k *cov.Kernel, nugget float64) (Factor, error) {
	cur := nugget
	for attempt := 0; ; attempt++ {
		e.gen++
		cntFactorRuns.Inc()
		f, err := e.fac.factorizeOnce(e, k, cur)
		if err == nil {
			e.diag.LastNugget, e.diag.LastRetries = cur, attempt
			return f, nil
		}
		cntFactorFail.Inc()
		e.diag.FactorFailures++
		e.diag.LastFailure = err.Error()
		if !errors.Is(err, la.ErrNotPositiveDefinite) || attempt >= maxNuggetEscalations {
			return nil, err
		}
		cur *= e.cfg.NuggetEscalation
		cntNuggetEscalated.Inc()
		e.diag.NuggetEscalations++
	}
}

// halfSolved factors Σ and returns the factor plus L⁻¹Z in the cached
// scratch vector.
func (e *localBackend) halfSolved(k *cov.Kernel, nugget float64) (Factor, []float64, error) {
	f, err := e.Factorize(k, nugget)
	if err != nil {
		return nil, nil, err
	}
	if e.y == nil {
		e.y = make([]float64, e.p.N())
	}
	copy(e.y, e.p.Z)
	f.HalfSolve(e.y)
	return f, e.y, nil
}

// LogLikelihood evaluates ℓ(θ) (paper eq. 1) reusing cached buffers.
func (e *localBackend) LogLikelihood(theta cov.Params) (LikResult, error) {
	if err := theta.Validate(); err != nil {
		return LikResult{}, err
	}
	f, y, err := e.halfSolved(cov.NewKernel(theta), e.cfg.nugget(theta.Variance))
	if err != nil {
		return LikResult{}, err
	}
	var res LikResult
	res.Bytes = f.Bytes()
	res.MaxRank, res.MeanRank = f.RankStats()
	res.NuggetUsed, res.NuggetRetries = e.diag.LastNugget, e.diag.LastRetries
	res.LogDet = f.LogDet()
	res.QuadForm = la.Dot(y, y)
	n := float64(e.p.N())
	res.Value = -0.5*n*math.Log(2*math.Pi) - 0.5*res.LogDet - 0.5*res.QuadForm
	return res, nil
}

// ProfiledLogLikelihood evaluates the concentrated likelihood ℓ_p(θ₂, θ₃)
// (see the package-level ProfiledLogLikelihood) reusing cached buffers.
func (e *localBackend) ProfiledLogLikelihood(rangeP, smoothness float64) (logL, varianceHat float64, err error) {
	theta := cov.Params{Variance: 1, Range: rangeP, Smoothness: smoothness}
	if err := theta.Validate(); err != nil {
		return 0, 0, err
	}
	f, y, err := e.halfSolved(cov.NewKernel(theta), e.cfg.nugget(1))
	if err != nil {
		return 0, 0, err
	}
	n := float64(e.p.N())
	varianceHat = la.Dot(y, y) / n
	if varianceHat <= 0 {
		return 0, 0, fmt.Errorf("core: degenerate profiled variance %g", varianceHat)
	}
	logL = -0.5*n*(math.Log(2*math.Pi)+1+math.Log(varianceHat)) - 0.5*f.LogDet()
	return logL, varianceHat, nil
}

// SolveVec overwrites b with Σ⁻¹·b, factoring as needed.
func (e *localBackend) SolveVec(k *cov.Kernel, nugget float64, b []float64) error {
	f, err := e.Factorize(k, nugget)
	if err != nil {
		return err
	}
	f.Solve(b)
	return nil
}

// HalfSolveChunked factors once and walks newPts in chunk-wide column blocks
// (see Backend). Session uses the FactorBackend capability instead so it can
// cache the factor across calls; this path serves direct Backend users.
func (e *localBackend) HalfSolveChunked(k *cov.Kernel, nugget float64, newPts []geom.Point, chunk int, y []float64, visit func(col int, w *la.Mat, y []float64)) error {
	f, err := e.Factorize(k, nugget)
	if err != nil {
		return err
	}
	yr := append([]float64(nil), y...)
	f.HalfSolve(yr)
	n := e.p.N()
	m := len(newPts)
	for lo := 0; lo < m; lo += chunk {
		hi := min(lo+chunk, m)
		w := la.NewMat(n, hi-lo)
		k.Block(w, e.p.Points, newPts[lo:hi], e.p.Metric)
		f.HalfSolveMat(w)
		visit(lo, w, yr)
	}
	return nil
}
