package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/rng"
)

// rawDataset builds a caller-order dataset (no ordering applied) with a
// sampled Matérn field.
func rawDataset(t *testing.T, n int, seed uint64) ([]geom.Point, []float64) {
	t.Helper()
	r := rng.New(seed)
	pts := geom.GeneratePerturbedGrid(n, r)
	k := cov.NewKernel(theta())
	z, err := cov.SampleField(k, pts, geom.Euclidean, r.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	return pts, z
}

// TestProblemKeepsPermutation: NewProblem records the Morton permutation and
// the restore helpers invert it exactly.
func TestProblemKeepsPermutation(t *testing.T) {
	pts, z := rawDataset(t, 144, 21)
	p, err := NewProblem(pts, z, geom.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ordering != geom.OrderMorton {
		t.Fatalf("NewProblem ordering %q, want %q", p.Ordering, geom.OrderMorton)
	}
	if len(p.Perm) != len(pts) {
		t.Fatalf("perm length %d, want %d", len(p.Perm), len(pts))
	}
	for i := range p.Points {
		if p.Points[i] != pts[p.Perm[i]] || p.Z[i] != z[p.Perm[i]] {
			t.Fatalf("Perm does not map stored index %d to its caller point", i)
		}
	}
	gotZ := p.RestoreOrder(p.Z)
	gotPts := p.RestorePoints(p.Points)
	for i := range pts {
		if gotZ[i] != z[i] || gotPts[i] != pts[i] {
			t.Fatalf("restore helpers did not recover caller order at %d", i)
		}
	}
	inv := p.InversePerm()
	for i := range p.Perm {
		if inv[p.Perm[i]] != i {
			t.Fatalf("InversePerm wrong at %d", i)
		}
	}
}

// TestNewProblemOrderedSchemes: each scheme is recorded, each is a valid
// bijection over the data, and "none" preserves caller order exactly.
func TestNewProblemOrderedSchemes(t *testing.T) {
	pts, z := rawDataset(t, 100, 22)
	for _, ord := range []geom.Ordering{geom.None, geom.Morton, geom.Hilbert, geom.KDBlocks(25)} {
		p, err := NewProblemOrdered(pts, z, geom.Euclidean, ord)
		if err != nil {
			t.Fatal(err)
		}
		if p.Ordering != ord.Name() {
			t.Fatalf("ordering %q recorded as %q", ord.Name(), p.Ordering)
		}
		var sum float64
		for _, v := range p.Z {
			sum += v
		}
		var want float64
		for _, v := range z {
			want += v
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("%s: Z not a permutation of the input", ord.Name())
		}
	}
	p, err := NewProblemOrdered(pts, z, geom.Euclidean, geom.None)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if p.Points[i] != pts[i] || p.Z[i] != z[i] {
			t.Fatal("none ordering must preserve caller order")
		}
	}
}

// TestReorderedComposes: reordering a problem twice still maps straight back
// to the original caller order, and leaves the receiver untouched.
func TestReorderedComposes(t *testing.T) {
	pts, z := rawDataset(t, 81, 23)
	p, err := NewProblem(pts, z, geom.Euclidean) // morton
	if err != nil {
		t.Fatal(err)
	}
	beforePts := append([]geom.Point(nil), p.Points...)
	q := p.Reordered(geom.Hilbert).Reordered(geom.KDBlocks(27))
	for i := range p.Points {
		if p.Points[i] != beforePts[i] {
			t.Fatal("Reordered mutated its receiver")
		}
	}
	if q.Ordering != geom.OrderKDBlock {
		t.Fatalf("ordering after two reorders %q", q.Ordering)
	}
	for i := range q.Points {
		if q.Points[i] != pts[q.Perm[i]] || q.Z[i] != z[q.Perm[i]] {
			t.Fatalf("composed Perm broken at %d", i)
		}
	}
	gotZ := q.RestoreOrder(q.Z)
	for i := range z {
		if gotZ[i] != z[i] {
			t.Fatalf("restore after composition wrong at %d", i)
		}
	}
}

// TestConfigOrderingValidation: unknown names are rejected, registered names
// and the empty default pass.
func TestConfigOrderingValidation(t *testing.T) {
	for _, name := range append([]string{""}, geom.OrderingNames()...) {
		cfg := Config{Ordering: name}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Ordering %q rejected: %v", name, err)
		}
	}
	err := Config{Ordering: "zigzag"}.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown ordering") {
		t.Fatalf("unknown ordering error = %v", err)
	}
}

// TestSessionAppliesConfiguredOrdering: a Session with a different Ordering
// evaluates on a reordered private copy and leaves the caller's Problem
// untouched.
func TestSessionAppliesConfiguredOrdering(t *testing.T) {
	pts, z := rawDataset(t, 100, 24)
	p, err := NewProblem(pts, z, geom.Euclidean) // morton
	if err != nil {
		t.Fatal(err)
	}
	before := append([]geom.Point(nil), p.Points...)
	s, err := NewSession(p, Config{Mode: TLR, TileSize: 25, Accuracy: 1e-9, Ordering: geom.OrderHilbert})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Problem().Ordering; got != geom.OrderHilbert {
		t.Fatalf("session problem ordering %q, want hilbert", got)
	}
	if s.Problem() == p {
		t.Fatal("session must not evaluate the caller's Problem under a different ordering")
	}
	for i := range before {
		if p.Points[i] != before[i] {
			t.Fatal("NewSession mutated the caller's Problem")
		}
	}
	// Matching ordering (or empty) keeps the exact caller Problem.
	for _, ordering := range []string{"", geom.OrderMorton} {
		s2, err := NewSession(p, Config{Ordering: ordering})
		if err != nil {
			t.Fatal(err)
		}
		if s2.Problem() != p {
			t.Fatalf("Ordering %q must not copy an already-matching problem", ordering)
		}
	}
}

// TestOrderingInvariantLikelihood: the log-likelihood is a property of the
// dataset, not of the row order — every ordering must produce the same value
// up to factorization roundoff (dense mode) and compression tolerance (TLR).
func TestOrderingInvariantLikelihood(t *testing.T) {
	pts, z := rawDataset(t, 144, 25)
	newPts := []geom.Point{{X: 0.31, Y: 0.47}, {X: 0.83, Y: 0.12}, {X: 0.05, Y: 0.95}}
	type result struct {
		lik  float64
		pred []float64
	}
	run := func(cfg Config) map[string]result {
		out := map[string]result{}
		for _, name := range geom.OrderingNames() {
			cfg := cfg
			cfg.Ordering = name
			cfg.TileSize = 24
			p, err := NewProblemOrdered(pts, z, geom.Euclidean, geom.None)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSession(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			lik, err := s.LogLikelihood(theta())
			if err != nil {
				t.Fatal(err)
			}
			pred, err := s.Predict(newPts, theta())
			if err != nil {
				t.Fatal(err)
			}
			out[name] = result{lik: lik.Value, pred: pred}
		}
		return out
	}
	check := func(res map[string]result, tol float64, mode string) {
		ref := res[geom.OrderNone]
		for name, r := range res {
			if rel := math.Abs(r.lik-ref.lik) / math.Abs(ref.lik); rel > tol {
				t.Fatalf("%s: %s loglik %.12f vs none %.12f (rel %.2e > %.0e)",
					mode, name, r.lik, ref.lik, rel, tol)
			}
			for i := range r.pred {
				if d := math.Abs(r.pred[i] - ref.pred[i]); d > tol*10 {
					t.Fatalf("%s: %s prediction %d differs by %g", mode, name, i, d)
				}
			}
		}
	}
	check(run(Config{Mode: FullBlock}), 1e-10, "dense")
	check(run(Config{Mode: TLR, Accuracy: 1e-9, CompressorName: "svd"}), 1e-6, "tlr")
}

// TestOrderingComposesWithChaos: a chaos-injected TLR fit under a non-default
// ordering recovers bitwise the fault-free result — a retried tile sees the
// same ordering.
func TestOrderingComposesWithChaos(t *testing.T) {
	p := smallProblem(t, 120, 26)
	newPts := []geom.Point{{X: 0.41, Y: 0.43}, {X: 0.13, Y: 0.77}}
	base := Config{Mode: TLR, TileSize: 24, Accuracy: 1e-7, CompressorName: "rsvd",
		Workers: 4, Ordering: geom.OrderHilbert}

	_, wantFit, wantPred := fitAndPredict(t, p, base, newPts)

	cfg := base
	cfg.MaxRetries = 2
	cfg.Chaos = &chaos.FaultPlan{
		Seed:       4321,
		TaskPanics: 3,
		TaskDelays: 3,
		TaskDelay:  100 * time.Microsecond,
	}
	s, gotFit, gotPred := fitAndPredict(t, p, cfg, newPts)
	if st := s.ChaosStats(); st.TaskPanics < 1 {
		t.Fatalf("no task panic was injected: %+v", st)
	}
	if gotFit.Theta != wantFit.Theta || gotFit.LogL != wantFit.LogL {
		t.Fatalf("hilbert-ordered fit under chaos diverged:\n got %+v\nwant %+v", gotFit, wantFit)
	}
	for i := range wantPred {
		if gotPred[i] != wantPred[i] {
			t.Fatalf("hilbert-ordered prediction %d diverged under chaos", i)
		}
	}
}

// TestOrderingDistributedMatchesShared: the distributed backend under each
// ordering agrees with the shared-memory likelihood on the same ordering.
func TestOrderingDistributedMatchesShared(t *testing.T) {
	p := smallProblem(t, 256, 27)
	for _, name := range []string{geom.OrderMorton, geom.OrderHilbert, geom.OrderKDBlock} {
		shared := Config{Mode: TLR, TileSize: 32, Accuracy: 1e-9, Ordering: name}
		want, err := LogLikelihood(p, theta(), shared)
		if err != nil {
			t.Fatal(err)
		}
		dist := shared
		dist.Ranks = 4
		got, err := LogLikelihood(p, theta(), dist)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got.Value-want.Value) / math.Abs(want.Value); rel > 1e-12 {
			t.Fatalf("%s: distributed loglik %.12f vs shared %.12f (rel %.2e)",
				name, got.Value, want.Value, rel)
		}
	}
}
