package core

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/la"
	"repro/internal/obs"
)

// Cache-reuse counters: each factorize call either reuses the backend's
// cached Σ buffer (hit) or allocates it (miss). Across a Fit the hit:miss
// ratio should be (evals−1):1 — anything else means the optimizer is
// silently reallocating per-problem state every iteration.
var (
	cntCacheSigmaHit  = obs.GetCounter("core.cache.sigma.hit")
	cntCacheSigmaMiss = obs.GetCounter("core.cache.sigma.miss")
)

func init() {
	RegisterBackend(FullBlock, BackendSpec{
		Name:    "full-block",
		Aliases: []string{"dense", "fullblock", "exact"},
		New: func(p *Problem, cfg Config, inj *chaos.Injector) (Backend, error) {
			return newLocalBackend(p, cfg, inj, &denseState{}), nil
		},
	})
}

// denseState is the FullBlock mode's cached state: the dense n×n Σ buffer,
// overwritten (and refactored in place) every evaluation.
type denseState struct {
	sigma *la.Mat // Σ / L buffer
}

func (st *denseState) factorizeOnce(e *localBackend, k *cov.Kernel, nugget float64) (Factor, error) {
	n := e.p.N()
	if st.sigma == nil {
		st.sigma = la.NewMat(n, n)
		cntCacheSigmaMiss.Inc()
	} else {
		cntCacheSigmaHit.Inc()
	}
	k.MatrixParallel(st.sigma, e.p.Points, e.p.Metric, e.cfg.Workers)
	cov.AddNugget(st.sigma, nugget)
	if err := la.Potrf(st.sigma); err != nil {
		return nil, fmt.Errorf("core: %s factorization: %w", e.cfg.Mode, err)
	}
	return denseFactor{l: st.sigma}, nil
}

// denseFactor wraps a dense lower Cholesky factor.
type denseFactor struct{ l *la.Mat }

func (f denseFactor) HalfSolve(b []float64) { la.ForwardSolveVec(f.l, b) }
func (f denseFactor) Solve(b []float64)     { la.CholSolveVec(f.l, b) }
func (f denseFactor) HalfSolveMat(b *la.Mat) {
	la.Trsm(la.Left, la.Lower, la.NoTrans, 1, f.l, b)
}
func (f denseFactor) SolveMat(b *la.Mat) {
	la.Trsm(la.Left, la.Lower, la.NoTrans, 1, f.l, b)
	la.Trsm(la.Left, la.Lower, la.Transpose, 1, f.l, b)
}
func (f denseFactor) LogDet() float64 { return la.LogDetFromChol(f.l) }
func (f denseFactor) Bytes() int64 {
	return int64(f.l.Rows) * int64(f.l.Cols) * 8
}
func (f denseFactor) RankStats() (int, float64) { return 0, 0 }
