package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want string // substring of the error; "" = valid
	}{
		{"zero value", Config{}, ""},
		{"defaults", DefaultConfig(), ""},
		{"tlr", Config{Mode: TLR, Accuracy: 1e-7, CompressorName: "rsvd"}, ""},
		{"dist", Config{Mode: TLR, Ranks: 6}, ""},
		{"dist grid", Config{Mode: TLR, Ranks: 6, Grid: [2]int{2, 3}}, ""},
		{"grid implies ranks", Config{Mode: TLR, Grid: [2]int{2, 2}}, ""},
		{"unknown mode", Config{Mode: Mode(9)}, "unknown mode"},
		{"negative tile", Config{TileSize: -1}, "TileSize"},
		{"negative accuracy", Config{Accuracy: -1e-9}, "Accuracy"},
		{"negative workers", Config{Workers: -2}, "Workers"},
		{"negative nugget", Config{Nugget: -1}, "Nugget"},
		{"bad compressor", Config{CompressorName: "zstd"}, "unknown compressor"},
		{"negative ranks", Config{Ranks: -4}, "Ranks"},
		{"negative grid", Config{Grid: [2]int{-2, 2}}, "Grid"},
		{"half grid", Config{Grid: [2]int{2, 0}}, "both dimensions"},
		{"grid ranks mismatch", Config{Mode: TLR, Ranks: 4, Grid: [2]int{2, 3}}, "does not tile"},
		{"dist dense", Config{Mode: FullBlock, Ranks: 4}, "requires Mode=TLR"},
		{"dist full tile", Config{Mode: FullTile, Grid: [2]int{2, 2}}, "requires Mode=TLR"},
	} {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestConfigNormalized(t *testing.T) {
	got := Config{}.normalized()
	want := DefaultConfig().normalized()
	// The one intentional difference: an empty Ordering means "keep the
	// Problem's ordering" and survives normalization, while DefaultConfig
	// spells out the library default ("morton") — behaviorally identical for
	// NewProblem-built datasets, which are Morton-ordered already.
	if got.Ordering != "" || want.Ordering != geom.OrderMorton {
		t.Fatalf("ordering defaults: zero %q, DefaultConfig %q", got.Ordering, want.Ordering)
	}
	want.Ordering = got.Ordering
	if got != want {
		t.Fatalf("zero Config normalizes to %+v, DefaultConfig to %+v", got, want)
	}
	if got.TileSize != 128 || got.Accuracy != 1e-9 || got.Workers != 1 ||
		got.CompressorName != "svd" || got.Ranks != 1 || got.Grid != [2]int{1, 1} {
		t.Fatalf("unexpected defaults: %+v", got)
	}
	// Ranks=6 without a grid factors most-square, P ≤ Q.
	if c := (Config{Mode: TLR, Ranks: 6}).normalized(); c.Grid != [2]int{2, 3} {
		t.Fatalf("Ranks=6 grid = %v, want {2 3}", c.Grid)
	}
	// Grid implies Ranks.
	if c := (Config{Mode: TLR, Grid: [2]int{2, 2}}).normalized(); c.Ranks != 4 {
		t.Fatalf("Grid {2,2} ranks = %d, want 4", c.Ranks)
	}
}

// Entry points must reject invalid configs instead of coercing them.
func TestEntryPointsValidateConfig(t *testing.T) {
	p := smallProblem(t, 64, 3)
	bad := Config{Mode: TLR, CompressorName: "nope"}
	if _, err := LogLikelihood(p, theta(), bad); err == nil {
		t.Error("LogLikelihood accepted an unknown compressor")
	}
	if _, err := Fit(p, Config{TileSize: -5}, FitOptions{}); err == nil {
		t.Error("Fit accepted a negative TileSize")
	}
	if _, err := Predict(p, p.Points[:2], theta(), Config{Accuracy: -1}); err == nil {
		t.Error("Predict accepted a negative Accuracy")
	}
	if _, err := PredictWithVariance(p, p.Points[:2], theta(), Config{Nugget: -1}); err == nil {
		t.Error("PredictWithVariance accepted a negative Nugget")
	}
	if _, _, err := ProfiledLogLikelihood(p, 0.1, 0.5, Config{Workers: -1}); err == nil {
		t.Error("ProfiledLogLikelihood accepted negative Workers")
	}
	if _, err := Factorize(p, theta(), Config{Mode: TLR, Ranks: 4}); err == nil {
		t.Error("Factorize must reject distributed configs")
	}
	if _, _, err := SolveRefined(p, theta(), Config{Ranks: 4}, make([]float64, p.N()), RefineOptions{}); err == nil {
		t.Error("SolveRefined must reject distributed configs")
	}
	if _, err := NewSession(nil, Config{}); err == nil {
		t.Error("NewSession accepted a nil problem")
	}
}

// A Session must produce the same results as the free functions and remain
// consistent across repeated calls (the explicit-reuse contract).
func TestSessionMatchesFreeFunctions(t *testing.T) {
	p := smallProblem(t, 100, 4)
	cfg := Config{Mode: TLR, TileSize: 32, Accuracy: 1e-8}
	th := theta()

	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := LogLikelihood(p, th, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		got, err := s.LogLikelihood(th)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want.Value || got.LogDet != want.LogDet {
			t.Fatalf("rep %d: session %v free %v", rep, got, want)
		}
	}

	wantPred, err := Predict(p, p.Points[:3], th, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotPred, err := s.Predict(p.Points[:3], th)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantPred {
		if math.Abs(gotPred[i]-wantPred[i]) > 1e-9 {
			t.Fatalf("prediction %d: session %g free %g", i, gotPred[i], wantPred[i])
		}
	}

	if s.Config().TileSize != 32 || s.Config().Ranks != 1 {
		t.Fatalf("session config not normalized: %+v", s.Config())
	}
}

func TestSessionFitMatchesFreeFit(t *testing.T) {
	p := smallProblem(t, 100, 5)
	cfg := Config{Mode: FullBlock}
	opts := FitOptions{FixSmoothness: true, Start: theta(), MaxEvals: 40}
	want, err := Fit(p, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Fit(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Theta != want.Theta || got.Evals != want.Evals {
		t.Fatalf("session fit %+v, free fit %+v", got, want)
	}
}
