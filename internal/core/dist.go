package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/tlr"
)

// User-range allreduce tags of the distributed likelihood (each AllreduceSum
// consumes tag and tag+1, hence the spacing).
const (
	distTagQuad    = 1 // quadratic-form partial sums
	distTagBytes   = 3 // shard storage footprints
	distTagMaxRank = 5 // max compressed rank
	distTagRankSum = 7 // rank sum (mean-rank numerator)
	distTagRankCnt = 9 // compressed-tile count (mean-rank denominator)
)

// distBackend is the distributed-memory Backend (TLR with Ranks > 1): it
// owns a persistent World and one DistTLR shard per rank, both reused across
// the optimizer's evaluations — shards regenerate their owned tiles per θ
// instead of reallocating, and the World's mailboxes are drained by every
// collective, so evaluation k+1 starts from a clean slate. Factors stay
// sharded on the ranks, so distBackend does not implement FactorBackend;
// Session routes kriging through SolveVec/HalfSolveChunked instead.
type distBackend struct {
	p    *Problem
	cfg  Config
	grid mpi.Grid
	comp tlr.Compressor
	inj  *chaos.Injector // nil unless Config.Chaos is set

	world  *mpi.World
	shards []*mpi.DistTLR

	// Graceful-degradation bookkeeping, mirroring localBackend's.
	diag Diagnostics

	epoch time.Time // trace epoch set by EnableTracing
}

func newDistBackend(p *Problem, cfg Config, inj *chaos.Injector) (*distBackend, error) {
	comp, err := tlr.CompressorByName(cfg.CompressorName)
	if err != nil {
		return nil, err
	}
	w := mpi.NewWorld(cfg.Ranks)
	if cfg.RecvTimeout > 0 {
		w.SetRecvTimeout(cfg.RecvTimeout)
	}
	if inj != nil {
		w.SetMsgHook(func(src, dst, tag int, bytes int64, attempt int) mpi.MsgFault {
			drop, delay := inj.MessageFault(src, dst, tag, attempt)
			switch {
			case drop:
				return mpi.MsgFault{Verdict: mpi.MsgDrop}
			case delay > 0:
				return mpi.MsgFault{Verdict: mpi.MsgDelay, Delay: delay}
			}
			return mpi.MsgFault{Verdict: mpi.MsgDeliver}
		})
	}
	return &distBackend{
		p:    p,
		cfg:  cfg,
		grid: mpi.Grid{P: cfg.Grid[0], Q: cfg.Grid[1]},
		comp: comp,
		inj:  inj,

		world:  w,
		shards: make([]*mpi.DistTLR, cfg.Ranks),
	}, nil
}

func (e *distBackend) Mode() Mode               { return e.cfg.Mode }
func (e *distBackend) Diagnostics() Diagnostics { return e.diag }

// EnableTracing starts a timestamped communication timeline on the World.
func (e *distBackend) EnableTracing() {
	e.epoch = time.Now()
	e.world.EnableTrace(e.epoch)
}

// Trace renders the communication timeline as a runtime.Trace — one worker
// lane per rank, every cross-rank message an instant event. Nil until
// EnableTracing is called.
func (e *distBackend) Trace() *runtime.Trace {
	if !e.world.TraceEnabled() {
		return nil
	}
	tr := &runtime.Trace{Workers: e.cfg.Ranks}
	tr.MergeEvents(e.world.TraceEvents(0))
	tr.Wall = time.Since(e.epoch)
	return tr
}

// CommStats returns the per-rank cumulative traffic — the measured
// counterpart of cluster.DistCholeskyComm.
func (e *distBackend) CommStats() []mpi.CommStats {
	out := make([]mpi.CommStats, e.cfg.Ranks)
	for r := range out {
		out[r] = e.world.Stats(r)
	}
	return out
}

// hstRecovery records end-to-end elastic-recovery latency: from the moment a
// rank death is diagnosed to the resumed run completing on the survivors.
var hstRecovery = obs.GetHistogram("core.recovery.ns")

// rankDeath scans a Run's per-rank errors for a rank-death diagnosis of the
// current membership epoch naming a still-live rank. Stale diagnoses (from
// before an already-completed shrink) and already-dead ranks are skipped.
func (e *distBackend) rankDeath(errs []error) (int, bool) {
	epoch := e.world.Epoch()
	for _, err := range errs {
		var rd *mpi.RankDeath
		if errors.As(err, &rd) && rd.Epoch == epoch && e.world.Alive(rd.Rank) {
			return rd.Rank, true
		}
	}
	return -1, false
}

// withFactored regenerates the shards for kernel k, factors them with the
// distributed TLR Cholesky, and runs fn on every rank against its factored
// shard. Two failure ladders wrap the run:
//
//   - A Cholesky breakdown — which the SPD-agreement allreduce makes every
//     rank observe identically — escalates the nugget and re-runs the whole
//     world, matching the shared-memory ladder; regeneration rebuilds every
//     tile from scratch, so the retry starts clean.
//   - With ElasticRecovery, a rank death (panic or diagnosed silence) marks
//     the rank dead and re-runs on the survivors in recovery mode: the run
//     opens with the epoch-tagged membership agreement (doubling as the
//     post-shrink barrier), remaps ownership, re-materializes the dead
//     rank's tiles from the deterministic generators, and resumes the
//     progress-gated Cholesky — survivors skip work already absorbed, so
//     only the rebuilt tiles compute, and the result is bitwise-identical
//     to an unfaulted run.
//
// The first rank error of a non-recoverable run is returned.
func (e *distBackend) withFactored(k *cov.Kernel, nugget float64, fn func(c *mpi.Comm, d *mpi.DistTLR) error) error {
	cur := nugget
	recovering := false
	var recoverStart time.Time
	for attempt := 0; ; attempt++ {
		cntFactorRuns.Inc()
		recovery := recovering
		recovering = false
		errs := e.world.Run(func(c *mpi.Comm) error {
			if e.inj != nil && !recovery {
				e.inj.RankFault(c.Rank())
			}
			d := e.shards[c.Rank()]
			if d == nil {
				d = mpi.NewDistTLR(c.Rank(), e.grid, e.p.Points, e.p.Metric, e.cfg.TileSize, e.cfg.Accuracy, e.comp)
				if e.inj != nil {
					d.ForceMiss = e.inj.CompressMiss
					d.PanelHook = e.inj.PanelKill
				}
				e.shards[c.Rank()] = d
			}
			if recovery {
				alive, _, err := c.AgreeAlive()
				if err != nil {
					return err
				}
				d.ApplyMembership(alive)
				d.Rebuild(k, cur)
			} else {
				d.Generate(k, cur)
			}
			if err := d.Cholesky(c); err != nil {
				return err
			}
			return fn(c, d)
		})
		var firstErr error
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
		if firstErr == nil {
			if recovery {
				hstRecovery.Observe(time.Since(recoverStart).Nanoseconds())
			}
			e.diag.LastNugget, e.diag.LastRetries = cur, attempt
			return nil
		}
		if e.cfg.ElasticRecovery && e.diag.RanksLost < e.cfg.MaxRankFailures && e.world.AliveCount() > 1 {
			if dead, ok := e.rankDeath(errs); ok {
				recoverStart = time.Now()
				e.world.MarkDead(dead)
				e.diag.RanksLost++
				e.diag.LastFailure = firstErr.Error()
				recovering = true
				continue
			}
		}
		cntFactorFail.Inc()
		e.diag.FactorFailures++
		e.diag.LastFailure = firstErr.Error()
		if !errors.Is(firstErr, la.ErrNotPositiveDefinite) || attempt >= maxNuggetEscalations {
			return firstErr
		}
		cur *= e.cfg.NuggetEscalation
		cntNuggetEscalated.Inc()
		e.diag.NuggetEscalations++
	}
}

// evalParts runs one distributed likelihood evaluation: factor, log|Σ| via
// the factor's allreduce, L⁻¹Z via the replicated forward solve, and the
// quadratic form plus the diagnostic stats via one AllreduceSum each.
func (e *distBackend) evalParts(k *cov.Kernel, nugget float64) (logDet, quad float64, diag LikResult, err error) {
	type parts struct {
		logDet, quad              float64
		bytes                     float64
		maxRank, rankSum, rankCnt float64
	}
	out := make([]parts, e.cfg.Ranks)
	err = e.withFactored(k, nugget, func(c *mpi.Comm, d *mpi.DistTLR) error {
		ld, err := d.LogDet(c)
		if err != nil {
			return err
		}
		y := append([]float64(nil), e.p.Z...)
		if err := d.ForwardSolve(c, y); err != nil {
			return err
		}
		// per-tile-row ‖y‖² contributions, reduced as a vector (one nonzero
		// contributor per slot — exact) and summed in fixed i-ascending
		// order, so the quadratic form is bitwise-independent of how tile
		// rows are grouped over ranks (the elastic-recovery guarantee).
		qvec := make([]float64, d.MT)
		for i := 0; i < d.MT; i++ {
			if d.Owner(i, i) == c.Rank() {
				yi := y[i*d.NB : i*d.NB+d.TileDim(i)]
				qvec[i] = la.Dot(yi, yi)
			}
		}
		qsum, err := c.AllreduceSumVec(distTagQuad, qvec)
		if err != nil {
			return err
		}
		var quad float64
		for _, v := range qsum {
			quad += v
		}
		bytes, err := c.AllreduceSum(distTagBytes, float64(d.Bytes()))
		if err != nil {
			return err
		}
		maxR, sumR, cntR := d.LocalRankStats()
		maxRank, err := c.AllreduceMax(distTagMaxRank, float64(maxR))
		if err != nil {
			return err
		}
		rankSum, err := c.AllreduceSum(distTagRankSum, float64(sumR))
		if err != nil {
			return err
		}
		rankCnt, err := c.AllreduceSum(distTagRankCnt, float64(cntR))
		if err != nil {
			return err
		}
		out[c.Rank()] = parts{
			logDet: ld, quad: quad, bytes: bytes,
			maxRank: maxRank, rankSum: rankSum, rankCnt: rankCnt,
		}
		return nil
	})
	if err != nil {
		return 0, 0, LikResult{}, err
	}
	p0 := out[e.world.LowestAlive()]
	diag = LikResult{Bytes: int64(p0.bytes), MaxRank: int(p0.maxRank)}
	if p0.rankCnt > 0 {
		diag.MeanRank = p0.rankSum / p0.rankCnt
	}
	diag.NuggetUsed, diag.NuggetRetries = e.diag.LastNugget, e.diag.LastRetries
	return p0.logDet, p0.quad, diag, nil
}

// LogLikelihood evaluates ℓ(θ) (paper eq. 1) on the distributed backend:
// one AllreduceSum for the log-determinant term, one for the quadratic form.
func (e *distBackend) LogLikelihood(theta cov.Params) (LikResult, error) {
	if err := theta.Validate(); err != nil {
		return LikResult{}, err
	}
	logDet, quad, res, err := e.evalParts(cov.NewKernel(theta), e.cfg.nugget(theta.Variance))
	if err != nil {
		return LikResult{}, err
	}
	res.LogDet = logDet
	res.QuadForm = quad
	n := float64(e.p.N())
	res.Value = -0.5*n*math.Log(2*math.Pi) - 0.5*logDet - 0.5*quad
	return res, nil
}

// ProfiledLogLikelihood evaluates the concentrated likelihood ℓ_p(θ₂, θ₃) on
// the distributed backend (see ProfiledLogLikelihood).
func (e *distBackend) ProfiledLogLikelihood(rangeP, smoothness float64) (logL, varianceHat float64, err error) {
	theta := cov.Params{Variance: 1, Range: rangeP, Smoothness: smoothness}
	if err := theta.Validate(); err != nil {
		return 0, 0, err
	}
	logDet, quad, _, err := e.evalParts(cov.NewKernel(theta), e.cfg.nugget(1))
	if err != nil {
		return 0, 0, err
	}
	n := float64(e.p.N())
	varianceHat = quad / n
	if varianceHat <= 0 {
		return 0, 0, fmt.Errorf("core: degenerate profiled variance %g", varianceHat)
	}
	logL = -0.5*n*(math.Log(2*math.Pi)+1+math.Log(varianceHat)) - 0.5*logDet
	return logL, varianceHat, nil
}

// SolveVec overwrites b with Σ⁻¹·b using the distributed factorization.
// Every rank works on a private replica; the lowest live rank's (identical)
// result is copied back into b.
func (e *distBackend) SolveVec(k *cov.Kernel, nugget float64, b []float64) error {
	replicas := make([][]float64, e.cfg.Ranks)
	err := e.withFactored(k, nugget, func(c *mpi.Comm, d *mpi.DistTLR) error {
		y := append([]float64(nil), b...)
		if err := d.Solve(c, y); err != nil {
			return err
		}
		replicas[c.Rank()] = y
		return nil
	})
	if err != nil {
		return err
	}
	copy(b, replicas[e.world.LowestAlive()])
	return nil
}

// HalfSolveChunked is the bounded-memory prediction-variance pair: it factors
// once, forward-solves y = L⁻¹·Z₂ on every rank, then assembles and
// forward-solves Σ₂₁ one TileSize-wide column block at a time — each rank
// holds one n×chunk block instead of the full n×m W. Every rank computes an
// identical replica; the lowest live rank hands each solved block to visit
// (called sequentially, with the block's starting column) so the caller can
// accumulate means and norms without the blocks ever coexisting.
func (e *distBackend) HalfSolveChunked(k *cov.Kernel, nugget float64, newPts []geom.Point, chunk int, y []float64, visit func(col int, w *la.Mat, y []float64)) error {
	n := e.p.N()
	m := len(newPts)
	return e.withFactored(k, nugget, func(c *mpi.Comm, d *mpi.DistTLR) error {
		yr := append([]float64(nil), y...)
		if err := d.ForwardSolve(c, yr); err != nil {
			return err
		}
		for c0 := 0; c0 < m; c0 += chunk {
			c1 := min(c0+chunk, m)
			w := la.NewMat(n, c1-c0)
			k.Block(w, e.p.Points, newPts[c0:c1], e.p.Metric)
			if err := d.ForwardSolveMat(c, w); err != nil {
				return err
			}
			if c.Rank() == c.LowestAlive() {
				visit(c0, w, yr)
			}
		}
		return nil
	})
}

// CommStats returns the per-rank cumulative traffic of the distributed
// backend (nil for shared-memory sessions).
func (s *Session) CommStats() []mpi.CommStats {
	cb, ok := s.be.(CommBackend)
	if !ok {
		return nil
	}
	return cb.CommStats()
}
