package core

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/tlr"
	"repro/internal/tlr/store"
)

// Graph-reuse counters for the TLR mode: the fused generate+compress+Cholesky
// DAG is built once per backend and re-executed per θ (the graph-reuse
// contract documented in tlr.GenSpec).
var (
	cntCacheTLRHit  = obs.GetCounter("core.cache.tlrgraph.hit")
	cntCacheTLRMiss = obs.GetCounter("core.cache.tlrgraph.miss")
)

func init() {
	RegisterBackend(TLR, BackendSpec{
		Name: "tlr",
		New: func(p *Problem, cfg Config, inj *chaos.Injector) (Backend, error) {
			return newLocalBackend(p, cfg, inj, &tlrState{}), nil
		},
		NewDist: func(p *Problem, cfg Config, inj *chaos.Injector) (Backend, error) {
			return newDistBackend(p, cfg, inj)
		},
	})
}

// tlrState is the TLR mode's cached state: the tile shell (diagonal buffers
// + compressed-tile slots), the handle layout, the generation scratch pool,
// and the fused generate+compress+Cholesky DAG — only ranks and tile
// contents are rebuilt per θ. With Config.MemBudget > 0 the shell is bound
// to an out-of-core tile store whose spill file lives as long as the state
// (released by Close).
type tlrState struct {
	tm    *tlr.Matrix    // tile shell
	tspec *tlr.GenSpec   // mutable kernel/nugget slot read by the gen tasks
	tg    *runtime.Graph // fused generate+compress + factorization DAG
	st    *store.Store   // out-of-core tile store; nil when MemBudget == 0
}

func (st *tlrState) factorizeOnce(e *localBackend, k *cov.Kernel, nugget float64) (Factor, error) {
	if st.tg == nil {
		comp, err := tlr.CompressorByName(e.cfg.CompressorName)
		if err != nil {
			return nil, err
		}
		st.tm = tlr.NewMatrix(e.p.N(), e.cfg.TileSize, e.cfg.Accuracy)
		st.tspec = &tlr.GenSpec{Pts: e.p.Points, Metric: e.p.Metric, Comp: comp}
		if e.inj != nil {
			st.tspec.ForceMiss = e.inj.CompressMiss
		}
		if e.cfg.MemBudget > 0 {
			gg := tlr.NewGenCholeskyGraph(st.tm, st.tspec, true)
			ts, err := store.NewTemp(e.cfg.SpillDir, e.cfg.MemBudget)
			if err != nil {
				return nil, fmt.Errorf("core: out-of-core spill file: %w", err)
			}
			tlr.AttachOOC(gg, st.tm, ts)
			st.tg, st.st = gg.G, ts
		} else {
			st.tg = tlr.BuildGenCholeskyGraph(st.tm, st.tspec, true)
		}
		cntCacheTLRMiss.Inc()
	} else {
		cntCacheTLRHit.Inc()
	}
	st.tspec.K = k
	st.tspec.Nugget = nugget
	if err := e.run(st.tg); err != nil {
		return nil, fmt.Errorf("core: %s factorization: %w", e.cfg.Mode, err)
	}
	if st.st != nil {
		if err := st.st.Err(); err != nil {
			return nil, fmt.Errorf("core: out-of-core spill: %w", err)
		}
	}
	return tlrFactor{m: st.tm}, nil
}

// Close releases the out-of-core spill file; a no-op for in-memory sessions.
func (st *tlrState) Close() error {
	if st.st == nil {
		return nil
	}
	return st.st.Close()
}

// storeStats reports the tile store's peak resident bytes and spill-file
// size for Session.StoreStats.
func (st *tlrState) storeStats() (highWater, spilled int64, ok bool) {
	if st.st == nil {
		return 0, 0, false
	}
	return st.st.HighWater(), st.st.SpillSize(), true
}

// tlrFactor wraps a TLR factorization.
type tlrFactor struct{ m *tlr.Matrix }

func (f tlrFactor) HalfSolve(b []float64)     { f.m.ForwardSolve(b) }
func (f tlrFactor) Solve(b []float64)         { f.m.Solve(b) }
func (f tlrFactor) HalfSolveMat(b *la.Mat)    { f.m.ForwardSolveMat(b) }
func (f tlrFactor) SolveMat(b *la.Mat)        { f.m.SolveMat(b) }
func (f tlrFactor) LogDet() float64           { return f.m.LogDet() }
func (f tlrFactor) Bytes() int64              { return f.m.Bytes() }
func (f tlrFactor) RankStats() (int, float64) { return f.m.RankStats() }
