package core


// ProfiledLogLikelihood evaluates the profile log-likelihood: the variance
// θ₁ is concentrated out analytically. Writing Σ(θ) = θ₁·R(θ₂, θ₃) with R
// the correlation matrix, the maximizing variance for fixed (θ₂, θ₃) is
//
//	θ̂₁ = Zᵀ R⁻¹ Z / n,
//
// and the profile log-likelihood becomes
//
//	ℓ_p(θ₂, θ₃) = −n/2·(log 2π + 1 + log θ̂₁) − 1/2·log|R|.
//
// This reduces the optimizer's search from 3 dimensions to 2 — the standard
// concentrated-likelihood trick ExaGeoStat's drivers also expose.
// Convenience path wrapping Session.ProfiledLogLikelihood.
func ProfiledLogLikelihood(p *Problem, rangeP, smoothness float64, cfg Config) (logL float64, varianceHat float64, err error) {
	s, err := NewSession(p, cfg)
	if err != nil {
		return 0, 0, err
	}
	return s.ProfiledLogLikelihood(rangeP, smoothness)
}

// ProfiledFit estimates θ̂ by maximizing the profile likelihood over
// (θ₂, θ₃) and recovering θ̂₁ in closed form. It typically needs far fewer
// likelihood evaluations than the full 3-parameter Fit for the same
// accuracy (see the profiled-fit ablation benchmark).
//
// Deprecated: set FitOptions.Profiled and call Fit instead — ProfiledFit is
// a thin wrapper kept for compatibility.
func ProfiledFit(p *Problem, cfg Config, opts FitOptions) (FitResult, error) {
	opts.Profiled = true
	return Fit(p, cfg, opts)
}
