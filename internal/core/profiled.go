package core

import (
	"fmt"
	"math"

	"repro/internal/cov"
	"repro/internal/optimize"
)

// ProfiledLogLikelihood evaluates the profile log-likelihood: the variance
// θ₁ is concentrated out analytically. Writing Σ(θ) = θ₁·R(θ₂, θ₃) with R
// the correlation matrix, the maximizing variance for fixed (θ₂, θ₃) is
//
//	θ̂₁ = Zᵀ R⁻¹ Z / n,
//
// and the profile log-likelihood becomes
//
//	ℓ_p(θ₂, θ₃) = −n/2·(log 2π + 1 + log θ̂₁) − 1/2·log|R|.
//
// This reduces the optimizer's search from 3 dimensions to 2 — the standard
// concentrated-likelihood trick ExaGeoStat's drivers also expose.
func ProfiledLogLikelihood(p *Problem, rangeP, smoothness float64, cfg Config) (logL float64, varianceHat float64, err error) {
	return newEvaluator(p, cfg).profiledLogLikelihood(rangeP, smoothness)
}

// ProfiledFit estimates θ̂ by maximizing the profile likelihood over
// (θ₂, θ₃) and recovering θ̂₁ in closed form. It typically needs far fewer
// likelihood evaluations than the full 3-parameter Fit for the same
// accuracy (see the profiled-fit ablation benchmark).
func ProfiledFit(p *Problem, cfg Config, opts FitOptions) (FitResult, error) {
	cfg = cfg.withDefaults()
	o := opts.withDefaults(p)

	dim := 2
	if o.FixSmoothness {
		dim = 1
	}
	lower := []float64{math.Log(o.Lower.Range), o.Lower.Smoothness}[:dim]
	upper := []float64{math.Log(o.Upper.Range), o.Upper.Smoothness}[:dim]
	start := []float64{math.Log(o.Start.Range), o.Start.Smoothness}[:dim]

	smoothOf := func(x []float64) float64 {
		if o.FixSmoothness {
			return o.Start.Smoothness
		}
		return x[1]
	}
	// As in Fit, one evaluator carries the assembly buffers and task graph
	// through the whole search.
	ev := newEvaluator(p, cfg)
	var lastErr error
	obj := func(x []float64) float64 {
		ll, _, err := ev.profiledLogLikelihood(math.Exp(x[0]), smoothOf(x))
		if err != nil {
			lastErr = err
			return math.Inf(1)
		}
		return -ll
	}
	res, err := optimize.NelderMead(
		optimize.Problem{Objective: obj, Lower: lower, Upper: upper},
		start,
		optimize.Options{MaxEvals: o.MaxEvals, TolX: o.TolX},
	)
	if err != nil {
		return FitResult{}, err
	}
	if math.IsInf(res.F, 1) {
		return FitResult{}, fmt.Errorf("core: every profiled evaluation failed: %w", lastErr)
	}
	rangeHat := math.Exp(res.X[0])
	smoothHat := smoothOf(res.X)
	ll, varHat, err := ev.profiledLogLikelihood(rangeHat, smoothHat)
	if err != nil {
		return FitResult{}, err
	}
	return FitResult{
		Theta:     cov.Params{Variance: varHat, Range: rangeHat, Smoothness: smoothHat},
		LogL:      ll,
		Evals:     res.Evals + 1,
		Converged: res.Converged,
	}, nil
}
