package core

import (
	"fmt"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/rng"
)

// Synthetic is a generated dataset split into fitting and held-out parts
// (paper Fig. 2: ◦ points fit the likelihood, × points validate prediction).
type Synthetic struct {
	Truth cov.Params
	Train *Problem
	// TestPoints/TestZ are the held-out locations and their true values.
	TestPoints []geom.Point
	TestZ      []float64
}

// GenerateSynthetic samples one realization of a zero-mean Gaussian random
// field with Matérn parameters theta at n perturbed-grid locations (paper
// §VII), holding out nTest randomly chosen locations for prediction
// validation. The generation is exact (dense Cholesky), matching the paper's
// practice of generating data in exact computation regardless of the mode
// later used for estimation.
func GenerateSynthetic(n, nTest int, theta cov.Params, seed uint64) (*Synthetic, error) {
	if nTest < 0 || nTest >= n {
		return nil, fmt.Errorf("core: nTest=%d must be in [0, n=%d)", nTest, n)
	}
	if err := theta.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	pts := geom.GeneratePerturbedGrid(n, r)
	k := cov.NewKernel(theta)
	z, err := cov.SampleField(k, pts, geom.Euclidean, r.Split(1))
	if err != nil {
		return nil, err
	}
	perm := r.Split(2).Perm(n)
	testIdx := perm[:nTest]
	isTest := make([]bool, n)
	for _, i := range testIdx {
		isTest[i] = true
	}
	trainPts := make([]geom.Point, 0, n-nTest)
	trainZ := make([]float64, 0, n-nTest)
	testPts := make([]geom.Point, 0, nTest)
	testZ := make([]float64, 0, nTest)
	for i := 0; i < n; i++ {
		if isTest[i] {
			testPts = append(testPts, pts[i])
			testZ = append(testZ, z[i])
		} else {
			trainPts = append(trainPts, pts[i])
			trainZ = append(trainZ, z[i])
		}
	}
	prob, err := NewProblem(trainPts, trainZ, geom.Euclidean)
	if err != nil {
		return nil, err
	}
	return &Synthetic{Truth: theta, Train: prob, TestPoints: testPts, TestZ: testZ}, nil
}

// GenerateSyntheticReplicates draws nrep measurement vectors over one shared
// location set (the paper's Monte-Carlo design: "one location matrix and 100
// different measurement vectors"), returning one Problem per replicate.
func GenerateSyntheticReplicates(n, nrep int, theta cov.Params, seed uint64) ([]*Problem, error) {
	if err := theta.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	pts := geom.GeneratePerturbedGrid(n, r)
	k := cov.NewKernel(theta)
	l, err := cov.FieldFactor(k, pts, geom.Euclidean)
	if err != nil {
		return nil, err
	}
	out := make([]*Problem, nrep)
	for rep := 0; rep < nrep; rep++ {
		z := cov.SampleFromFactor(l, r.Split(uint64(rep)+10))
		p, err := NewProblem(pts, z, geom.Euclidean)
		if err != nil {
			return nil, err
		}
		out[rep] = p
	}
	return out, nil
}
