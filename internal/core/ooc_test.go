package core

import (
	"strings"
	"testing"

	"repro/internal/tlr"
)

// A MemBudget session must produce bitwise-identical likelihoods and
// predictions to the unbounded TLR session, spill bytes while doing it, and
// release the spill file on Close.
func TestSessionMemBudgetBitwise(t *testing.T) {
	p := smallProblem(t, 400, 3)
	th := theta()
	base := Config{Mode: TLR, TileSize: 50, Accuracy: 1e-7, Workers: 2}

	ref, err := NewSession(p, base)
	if err != nil {
		t.Fatal(err)
	}
	refLik, err := ref.LogLikelihood(th)
	if err != nil {
		t.Fatal(err)
	}
	newPts := p.Points[:7]
	refPred, err := ref.Predict(newPts, th)
	if err != nil {
		t.Fatal(err)
	}

	ooc := base
	ooc.MemBudget = refLik.Bytes / 3
	ooc.SpillDir = t.TempDir()
	if ooc.MemBudget < tlr.MinMemBudget(base.TileSize, base.Workers) {
		ooc.MemBudget = tlr.MinMemBudget(base.TileSize, base.Workers)
	}
	s, err := NewSession(p, ooc)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lik, err := s.LogLikelihood(th)
	if err != nil {
		t.Fatal(err)
	}
	if lik != refLik {
		t.Fatalf("bounded likelihood %+v differs from unbounded %+v", lik, refLik)
	}
	pred, err := s.Predict(newPts, th)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pred {
		if pred[i] != refPred[i] {
			t.Fatalf("prediction %d differs: %v != %v", i, pred[i], refPred[i])
		}
	}
	hw, spilled, ok := s.StoreStats()
	if !ok {
		t.Fatal("StoreStats must report on a MemBudget session")
	}
	if spilled == 0 {
		t.Fatal("nothing spilled: budget had no effect")
	}
	if hw > ooc.MemBudget+tlr.MinMemBudget(base.TileSize, base.Workers) {
		t.Fatalf("high water %d exceeds budget %d plus working set", hw, ooc.MemBudget)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// In-memory sessions report no store and Close is a no-op.
	if _, _, ok := ref.StoreStats(); ok {
		t.Fatal("unbounded session must not report store stats")
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemBudgetValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative", Config{Mode: TLR, MemBudget: -1}, "negative MemBudget"},
		{"dense mode", Config{Mode: FullBlock, MemBudget: 1 << 30}, "requires Mode=TLR"},
		{"distributed", Config{Mode: TLR, Ranks: 4, MemBudget: 1 << 30}, "unsupported with Ranks"},
		{"too small", Config{Mode: TLR, TileSize: 128, Workers: 2, MemBudget: 1024}, "below the in-flight working set"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	ok := Config{Mode: TLR, TileSize: 64, MemBudget: tlr.MinMemBudget(64, 1)}
	if err := ok.Validate(); err != nil {
		t.Fatalf("minimal valid budget rejected: %v", err)
	}
}
