package dataio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/rng"
)

func sample(n int) Records {
	r := rng.New(1)
	rec := Records{Points: geom.GeneratePerturbedGrid(n, r), Z: make([]float64, n)}
	r.NormSlice(rec.Z)
	return rec
}

func TestCSVRoundTrip(t *testing.T) {
	rec := sample(50)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rec); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 50 {
		t.Fatalf("round trip lost rows: %d", len(back.Points))
	}
	for i := range rec.Points {
		if rec.Points[i] != back.Points[i] || rec.Z[i] != back.Z[i] {
			t.Fatalf("row %d not bit-exact after round trip", i)
		}
	}
}

func TestCSVHeaderOptional(t *testing.T) {
	in := "0.5,0.5,1.25\n0.1,0.9,-0.5\n"
	rec, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Points) != 2 || rec.Z[1] != -0.5 {
		t.Fatalf("headerless parse wrong: %+v", rec)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"x,y,z\n",          // header only
		"1,2\n",            // missing field
		"1,2,3,4\n",        // extra field
		"1,2,notanumber\n", // bad float
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail: %q", i, in)
		}
	}
}

func TestCSVMismatch(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, Records{Points: make([]geom.Point, 2), Z: make([]float64, 3)})
	if err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	rec := sample(10)
	if err := WriteCSVFile(path, rec); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != 10 {
		t.Fatal("file round trip lost rows")
	}
	if _, err := ReadCSVFile(filepath.Join(dir, "missing.csv")); !os.IsNotExist(err) {
		t.Fatal("missing file should surface os error")
	}
}

func model() Model {
	return Model{
		Kind:          "matern",
		Theta:         cov.Params{Variance: 1.2, Range: 0.15, Smoothness: 0.7},
		Metric:        "euclidean",
		LogLikelihood: -123.4,
		Mode:          "tlr",
		Accuracy:      1e-7,
		N:             1600,
	}
}

func TestModelRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveModel(&buf, model()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != model() {
		t.Fatalf("model round trip changed: %+v", back)
	}
}

func TestModelValidationOnLoad(t *testing.T) {
	bad := []string{
		`{"kind":"matern","theta":{"Variance":-1,"Range":0.1,"Smoothness":0.5},"metric":"euclidean"}`,
		`{"kind":"matern","theta":{"Variance":1,"Range":0.1,"Smoothness":0.5},"metric":"taxicab"}`,
		`{"kind":"wavelet","theta":{"Variance":1,"Range":0.1,"Smoothness":0.5},"metric":"euclidean"}`,
		`{not json`,
	}
	for i, in := range bad {
		if _, err := LoadModel(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestModelSaveRejectsInvalidTheta(t *testing.T) {
	m := model()
	m.Theta.Range = 0
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err == nil {
		t.Fatal("invalid theta must not serialize")
	}
}

func TestMetricNames(t *testing.T) {
	for _, m := range []geom.Metric{geom.Euclidean, geom.GreatCircle, geom.GreatCircleEarth100km, geom.Chordal} {
		name := MetricName(m)
		back, err := MetricByName(name)
		if err != nil || back != m {
			t.Fatalf("metric %v name round trip failed (%q)", m, name)
		}
	}
	if _, err := MetricByName("manhattan"); err == nil {
		t.Fatal("unknown metric should error")
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := SaveModelFile(path, model()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModelFile(path)
	if err != nil || back != model() {
		t.Fatalf("file round trip failed: %+v %v", back, err)
	}
}
