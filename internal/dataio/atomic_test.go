package dataio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Regression for the header-detection bug: a header whose column names
// contain digits ("x_1,y_1,z_1") defeated the old no-digits heuristic and
// was fed to ParseFloat. Detection is now parse-based.
func TestCSVHeaderWithDigits(t *testing.T) {
	in := "x_1,y_1,z_1\n0.5,0.5,1.25\n0.1,0.9,-0.5\n"
	rec, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("digit-bearing header must be skipped: %v", err)
	}
	if len(rec.Points) != 2 || rec.Z[0] != 1.25 || rec.Z[1] != -0.5 {
		t.Fatalf("wrong rows after header skip: %+v", rec)
	}
}

func TestCSVHeaderVariants(t *testing.T) {
	cases := []string{
		"lon,lat,value\n1,2,3\n",             // no "x" at all
		"\n\nX_coord,Y_coord,obs 1\n1,2,3\n", // blank lines before header
		"x,y,z\n1,2,3\n",                     // classic header still skipped
	}
	for i, in := range cases {
		rec, err := ReadCSV(strings.NewReader(in))
		if err != nil || len(rec.Points) != 1 || rec.Z[0] != 3 {
			t.Errorf("case %d: got %+v, %v", i, rec, err)
		}
	}
	// A parsable first line is data, even if a header would also be legal.
	rec, err := ReadCSV(strings.NewReader("1,2,3\n4,5,6\n"))
	if err != nil || len(rec.Points) != 2 {
		t.Fatalf("parsable first line must not be dropped: %+v, %v", rec, err)
	}
}

func TestCSVBadRowAfterFirst(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("x,y,z\n1,2,3\n4,oops,6\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("bad later row must fail with its line number, got %v", err)
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("wrong contents: %q", b)
	}
	// A failed write must leave the previous contents intact and no temp
	// file behind.
	boom := errors.New("boom")
	err := AtomicWriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("writer error must propagate, got %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("failed write clobbered target: %q", b)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("temp file leaked: %v", ents)
	}
}

func TestBlobFilePutGetReuse(t *testing.T) {
	b, err := NewBlobFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	r1, err := b.Put([]byte("hello world"), Region{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Get(r1)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("get: %q, %v", got, err)
	}

	// Smaller rewrite reuses the region in place: file must not grow.
	size := b.Size()
	r2, err := b.Put([]byte("tiny"), r1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Off != r1.Off || b.Size() != size {
		t.Fatalf("in-place rewrite moved or grew: %+v -> %+v, size %d -> %d", r1, r2, size, b.Size())
	}
	if got, _ := b.Get(r2); string(got) != "tiny" {
		t.Fatalf("rewrite contents: %q", got)
	}

	// Outgrowing the region frees it for later Puts of fitting size.
	big := bytes.Repeat([]byte("B"), 64)
	r3, err := b.Put(big, r2)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Get(r3); !bytes.Equal(got, big) {
		t.Fatal("grown blob corrupted")
	}
	r4, err := b.Put([]byte("recycled"), Region{})
	if err != nil {
		t.Fatal(err)
	}
	if r4.Off != r1.Off {
		t.Fatalf("freed region not recycled: got off %d want %d", r4.Off, r1.Off)
	}
	if got, _ := b.Get(r3); !bytes.Equal(got, big) {
		t.Fatal("recycling clobbered a live blob")
	}

	if _, err := b.Get(Region{}); err == nil {
		t.Fatal("empty region read must error")
	}
}

func TestBlobFileConcurrent(t *testing.T) {
	b, err := NewBlobFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var r Region
			for i := 0; i < 50; i++ {
				payload := bytes.Repeat([]byte{byte(g)}, 16+(g*7+i*13)%64)
				var err error
				if r, err = b.Put(payload, r); err != nil {
					done <- err
					return
				}
				got, err := b.Get(r)
				if err != nil {
					done <- err
					return
				}
				if !bytes.Equal(got, payload) {
					done <- fmt.Errorf("goroutine %d iter %d: payload corrupted", g, i)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
