package dataio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes a file so that a crash at any point leaves either
// the previous contents or the complete new contents at path — never a
// truncated mix. The payload is produced by write into a temporary file in
// the same directory (rename is only atomic within a filesystem), synced to
// stable storage, closed, and renamed over path.
//
// Every durable artifact in the repo goes through this helper: datasets
// (WriteCSVFile), model documents (SaveModelFile), and the optimizer
// checkpoints written by core.Fit.
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("dataio: atomic write %s: %w", path, err)
	}
	tmp := f.Name()
	// On any failure remove the temp file; Close and Remove are harmless
	// no-ops after the success path has already closed and renamed it.
	defer func() {
		f.Close()
		os.Remove(tmp)
	}()
	if err := write(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("dataio: atomic write %s: sync: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataio: atomic write %s: close: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("dataio: atomic write %s: %w", path, err)
	}
	return nil
}
