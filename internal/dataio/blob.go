package dataio

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// Region locates one blob inside a BlobFile: a byte range [Off, Off+Cap)
// of which the first Len bytes are live. A zero Region is "no region".
type Region struct {
	Off int64
	Len int64
	Cap int64
}

// Valid reports whether the region refers to stored bytes.
func (r Region) Valid() bool { return r.Cap > 0 }

// BlobFile is a single-file blob store for spill data: fixed-cost Put/Get
// of byte slices addressed by Region. It is built for the out-of-core tile
// store's access pattern — the same logical blob is rewritten many times as
// a tile is evicted, reloaded and updated across optimizer iterations — so
// Put reuses the caller's previous region in place when the new payload
// fits its capacity, and recycles outgrown regions through a free list
// instead of growing the file forever.
//
// Spill data is scratch, not a durable artifact: there is no header, no
// checksum and no recovery path. Callers that need durability use
// AtomicWriteFile. All methods are safe for concurrent use.
type BlobFile struct {
	mu   sync.Mutex
	f    *os.File
	size int64    // current end-of-file offset
	free []Region // recycled regions, sorted by Cap ascending
}

// NewBlobFile creates a blob store backed by an anonymous temp file in dir
// (or the default temp dir when dir is ""). The file is unlinked
// immediately after creation, so the space is reclaimed by the OS when the
// store is closed or the process exits — a crashed run cannot leak spill
// files.
func NewBlobFile(dir string) (*BlobFile, error) {
	f, err := os.CreateTemp(dir, "spill-*.blob")
	if err != nil {
		return nil, fmt.Errorf("dataio: blob file: %w", err)
	}
	// Unlink while keeping the fd: POSIX keeps the inode alive until the
	// last descriptor closes.
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		return nil, fmt.Errorf("dataio: blob file: %w", err)
	}
	return &BlobFile{f: f}, nil
}

// Put stores buf and returns its region. prev is the caller's previous
// region for the same logical blob (zero Region for none): when buf fits
// prev's capacity the bytes are rewritten in place, otherwise prev joins
// the free list and the blob moves to a recycled or freshly appended
// region. The returned region supersedes prev.
func (b *BlobFile) Put(buf []byte, prev Region) (Region, error) {
	n := int64(len(buf))
	b.mu.Lock()
	defer b.mu.Unlock()
	r := prev
	if !r.Valid() || n > r.Cap {
		if r.Valid() {
			b.freeLocked(r)
		}
		r = b.allocLocked(n)
	}
	r.Len = n
	if _, err := b.f.WriteAt(buf, r.Off); err != nil {
		return Region{}, fmt.Errorf("dataio: blob write: %w", err)
	}
	return r, nil
}

// Get reads the live bytes of r into a fresh slice.
func (b *BlobFile) Get(r Region) ([]byte, error) {
	if !r.Valid() {
		return nil, fmt.Errorf("dataio: blob read: empty region")
	}
	buf := make([]byte, r.Len)
	if _, err := b.f.ReadAt(buf, r.Off); err != nil {
		return nil, fmt.Errorf("dataio: blob read: %w", err)
	}
	return buf, nil
}

// Free returns r's space to the free list for reuse by later Puts.
func (b *BlobFile) Free(r Region) {
	if !r.Valid() {
		return
	}
	b.mu.Lock()
	b.freeLocked(r)
	b.mu.Unlock()
}

// Size reports the current file size in bytes (allocated, not just live).
func (b *BlobFile) Size() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.size
}

// Close releases the backing file. The store must not be used afterwards.
func (b *BlobFile) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.f == nil {
		return nil
	}
	err := b.f.Close()
	b.f = nil
	return err
}

// allocLocked finds the smallest free region with capacity >= n, or
// appends a new one at end of file.
func (b *BlobFile) allocLocked(n int64) Region {
	i := sort.Search(len(b.free), func(i int) bool { return b.free[i].Cap >= n })
	if i < len(b.free) {
		r := b.free[i]
		b.free = append(b.free[:i], b.free[i+1:]...)
		return r
	}
	r := Region{Off: b.size, Cap: n}
	b.size += n
	return r
}

// freeLocked inserts r into the free list keeping it sorted by Cap.
func (b *BlobFile) freeLocked(r Region) {
	r.Len = 0
	i := sort.Search(len(b.free), func(i int) bool { return b.free[i].Cap >= r.Cap })
	b.free = append(b.free, Region{})
	copy(b.free[i+1:], b.free[i:])
	b.free[i] = r
}
