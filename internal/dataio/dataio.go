// Package dataio provides the dataset and model persistence layer: CSV
// files for spatial datasets (the format ExaGeoStat's drivers read) and a
// JSON document for fitted models, so estimation results can be saved,
// shared, and reloaded for prediction.
package dataio

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cov"
	"repro/internal/geom"
)

// Records is an on-disk spatial dataset: one measurement per location.
type Records struct {
	Points []geom.Point
	Z      []float64
}

// WriteCSV writes the dataset as "x,y,z" rows with a header line.
func WriteCSV(w io.Writer, r Records) error {
	if len(r.Points) != len(r.Z) {
		return fmt.Errorf("dataio: %d points but %d measurements", len(r.Points), len(r.Z))
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("x,y,z\n"); err != nil {
		return err
	}
	for i, p := range r.Points {
		if _, err := fmt.Fprintf(bw, "%.17g,%.17g,%.17g\n", p.X, p.Y, r.Z[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dataset written by WriteCSV (or any x,y,z CSV with an
// optional header). The header is detected by parsing, not by content
// sniffing: if the first non-blank line does not parse as three floats it
// is the header, so column names that contain digits ("x_1,y_1,z_1") are
// skipped correctly. Blank lines are skipped; malformed rows after the
// first are reported with their line number.
func ReadCSV(r io.Reader) (Records, error) {
	var out Records
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	first := true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		vals, err := parseXYZ(line)
		if first {
			first = false
			if err != nil {
				continue // unparsable first line: the header
			}
		}
		if err != nil {
			return Records{}, fmt.Errorf("dataio: line %d: %w", lineNo, err)
		}
		out.Points = append(out.Points, geom.Point{X: vals[0], Y: vals[1]})
		out.Z = append(out.Z, vals[2])
	}
	if err := sc.Err(); err != nil {
		return Records{}, err
	}
	if len(out.Points) == 0 {
		return Records{}, errors.New("dataio: empty dataset")
	}
	return out, nil
}

// parseXYZ parses one "x,y,z" data row.
func parseXYZ(line string) ([3]float64, error) {
	parts := strings.Split(line, ",")
	if len(parts) != 3 {
		return [3]float64{}, fmt.Errorf("want 3 fields, got %d", len(parts))
	}
	var vals [3]float64
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return [3]float64{}, fmt.Errorf("field %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return vals, nil
}

// WriteCSVFile and ReadCSVFile are the path-based conveniences. The write
// is atomic (temp file + fsync + rename) so a crash mid-write cannot leave
// a truncated dataset on disk.
func WriteCSVFile(path string, r Records) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		return WriteCSV(w, r)
	})
}

// ReadCSVFile reads a dataset from path.
func ReadCSVFile(path string) (Records, error) {
	f, err := os.Open(path)
	if err != nil {
		return Records{}, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// Model is a fitted-model document.
type Model struct {
	// Kind is the covariance family name ("matern", …).
	Kind string `json:"kind"`
	// Theta is the estimated parameter vector.
	Theta cov.Params `json:"theta"`
	// Metric names the distance function ("euclidean", "greatcircle",
	// "greatcircle-earth-100km", "chordal").
	Metric string `json:"metric"`
	// LogLikelihood at the estimate, and how it was computed.
	LogLikelihood float64 `json:"loglik"`
	Mode          string  `json:"mode"`
	Accuracy      float64 `json:"accuracy,omitempty"`
	N             int     `json:"n"`
}

var metricNames = map[geom.Metric]string{
	geom.Euclidean:             "euclidean",
	geom.GreatCircle:           "greatcircle",
	geom.GreatCircleEarth100km: "greatcircle-earth-100km",
	geom.Chordal:               "chordal",
}

// MetricName returns the canonical name of a metric.
func MetricName(m geom.Metric) string {
	if n, ok := metricNames[m]; ok {
		return n
	}
	return fmt.Sprintf("metric(%d)", int(m))
}

// MetricByName resolves a metric name.
func MetricByName(name string) (geom.Metric, error) {
	for m, n := range metricNames {
		if n == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("dataio: unknown metric %q", name)
}

// SaveModel writes the model as indented JSON.
func SaveModel(w io.Writer, m Model) error {
	if err := m.Theta.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// LoadModel parses a model document and validates it.
func LoadModel(r io.Reader) (Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return Model{}, fmt.Errorf("dataio: %w", err)
	}
	if err := m.Theta.Validate(); err != nil {
		return Model{}, err
	}
	if _, err := MetricByName(m.Metric); err != nil {
		return Model{}, err
	}
	if _, err := cov.ModelByName(m.Kind); err != nil {
		return Model{}, err
	}
	return m, nil
}

// SaveModelFile and LoadModelFile are the path-based conveniences. The
// write is atomic (temp file + fsync + rename) so a crash mid-write cannot
// leave a truncated model document on disk.
func SaveModelFile(path string, m Model) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		return SaveModel(w, m)
	})
}

// LoadModelFile loads a model from path.
func LoadModelFile(path string) (Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return Model{}, err
	}
	defer f.Close()
	return LoadModel(f)
}
