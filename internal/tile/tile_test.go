package tile

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
)

func spd(n int, seed uint64) *la.Mat {
	r := rng.New(seed)
	b := la.NewMat(n, n)
	for i := range b.Data {
		b.Data[i] = r.Norm()
	}
	a := la.NewMat(n, n)
	la.Gemm(1, b, la.NoTrans, b, la.Transpose, 0, a)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestRoundTripDense(t *testing.T) {
	for _, dims := range [][2]int{{10, 3}, {12, 4}, {7, 7}, {5, 8}} {
		n, nb := dims[0], dims[1]
		a := spd(n, 1)
		m := FromDense(a, nb)
		back := m.ToDense()
		if !back.Equalish(a, 0) {
			t.Fatalf("n=%d nb=%d: dense->tile->dense not identity", n, nb)
		}
	}
}

func TestTileDims(t *testing.T) {
	m := NewSym(10, 4)
	if m.MT != 3 {
		t.Fatalf("MT = %d", m.MT)
	}
	if m.TileDim(0) != 4 || m.TileDim(2) != 2 {
		t.Fatalf("tile dims wrong: %d %d", m.TileDim(0), m.TileDim(2))
	}
	if m.Tile(2, 1).Rows != 2 || m.Tile(2, 1).Cols != 4 {
		t.Fatal("ragged tile shape wrong")
	}
}

func TestCholeskyMatchesDense(t *testing.T) {
	for _, dims := range [][2]int{{16, 4}, {30, 7}, {64, 16}, {10, 16}} {
		n, nb := dims[0], dims[1]
		a := spd(n, 2)
		ref := a.Clone()
		if err := la.Potrf(ref); err != nil {
			t.Fatal(err)
		}
		m := FromDense(a, nb)
		if err := Cholesky(m, 4); err != nil {
			t.Fatalf("n=%d nb=%d: %v", n, nb, err)
		}
		got := m.ToDense()
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if math.Abs(got.At(i, j)-ref.At(i, j)) > 1e-9 {
					t.Fatalf("n=%d nb=%d: L mismatch at (%d,%d): %g vs %g", n, nb, i, j, got.At(i, j), ref.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a := la.NewMat(8, 8) // zero matrix is not SPD
	m := FromDense(a, 4)
	err := Cholesky(m, 2)
	if err == nil {
		t.Fatal("expected failure on singular matrix")
	}
	if !errors.Is(errAsIs(err), la.ErrNotPositiveDefinite) && err.Error() == "" {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// errAsIs unwraps the runtime panic wrapper if the inner error survived as
// text only; the runtime converts panics to errors, losing the chain, so we
// only require a non-empty message. Kept as a helper for clarity.
func errAsIs(err error) error { return err }

func TestLogDet(t *testing.T) {
	n := 24
	a := spd(n, 3)
	ref := a.Clone()
	if err := la.Potrf(ref); err != nil {
		t.Fatal(err)
	}
	want := la.LogDetFromChol(ref)
	m := FromDense(a, 5)
	if err := Cholesky(m, 3); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.LogDet()-want) > 1e-8 {
		t.Fatalf("logdet: %g want %g", m.LogDet(), want)
	}
}

func TestForwardBackwardSolve(t *testing.T) {
	n := 37
	a := spd(n, 4)
	m := FromDense(a, 8)
	if err := Cholesky(m, 4); err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	x := make([]float64, n)
	r.NormSlice(x)
	// b = A x
	b := make([]float64, n)
	la.Gemv(1, a, la.NoTrans, x, 0, b)
	if err := ForwardSolve(m, b, 4); err != nil {
		t.Fatal(err)
	}
	BackwardSolve(m, b)
	for i := range b {
		if math.Abs(b[i]-x[i]) > 1e-7 {
			t.Fatalf("solve error at %d: %g vs %g", i, b[i], x[i])
		}
	}
}

func TestFillKernelMatchesDense(t *testing.T) {
	r := rng.New(6)
	pts := geom.GeneratePerturbedGrid(40, r)
	k := cov.NewKernel(cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5})
	m := NewSym(40, 9)
	m.FillKernel(k, pts, geom.Euclidean, 0)
	want := la.NewMat(40, 40)
	k.Matrix(want, pts, geom.Euclidean)
	if !m.ToDense().Equalish(want, 1e-15) {
		t.Fatal("FillKernel disagrees with dense assembly")
	}
}

func TestFillKernelNugget(t *testing.T) {
	r := rng.New(7)
	pts := geom.GeneratePerturbedGrid(10, r)
	k := cov.NewKernel(cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5})
	m := NewSym(10, 4)
	m.FillKernel(k, pts, geom.Euclidean, 0.25)
	d := m.ToDense()
	for i := 0; i < 10; i++ {
		if math.Abs(d.At(i, i)-1.25) > 1e-15 {
			t.Fatalf("nugget not applied at %d: %g", i, d.At(i, i))
		}
	}
}

func TestGraphTaskCounts(t *testing.T) {
	// For MT tile rows the Chameleon Cholesky DAG has MT potrf,
	// MT(MT-1)/2 trsm, MT(MT-1)/2 syrk, MT(MT-1)(MT-2)/6 gemm tasks.
	m := NewSym(40, 8) // MT = 5
	g, _ := BuildCholeskyGraph(m, false)
	c := g.CountByName()
	if c["potrf"] != 5 || c["trsm"] != 10 || c["syrk"] != 10 || c["gemm"] != 10 {
		t.Fatalf("task counts wrong: %v", c)
	}
}

func TestGraphFlopsMatchClosedForm(t *testing.T) {
	// Total flops of tiled Cholesky ≈ n³/3 for nb | n.
	n, nb := 128, 16
	m := NewSym(n, nb)
	g, _ := BuildCholeskyGraph(m, false)
	got := g.TotalFlops()
	want := float64(n) * float64(n) * float64(n) / 3
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("flops %g vs closed form %g", got, want)
	}
}

func TestCholeskyWorkersEquivalent(t *testing.T) {
	// Result must be identical regardless of parallelism.
	a := spd(48, 8)
	m1 := FromDense(a, 12)
	m2 := FromDense(a, 12)
	if err := Cholesky(m1, 1); err != nil {
		t.Fatal(err)
	}
	if err := Cholesky(m2, 8); err != nil {
		t.Fatal(err)
	}
	if !m1.ToDense().Equalish(m2.ToDense(), 1e-12) {
		t.Fatal("worker count changed the numerical result")
	}
}

func TestVectorSegments(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7}
	v := NewVector(data, 3)
	if v.MT != 3 || v.Seg(2).Rows != 1 {
		t.Fatalf("segmentation wrong: MT=%d", v.MT)
	}
	v.Seg(1).Set(0, 0, 99)
	if data[3] != 99 {
		t.Fatal("segments must alias the input slice")
	}
	if v.Data()[3] != 99 {
		t.Fatal("Data must return underlying storage")
	}
}
