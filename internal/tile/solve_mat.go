package tile

import (
	"repro/internal/la"
)

// rowBlock returns the view of rows [i·NB, i·NB+TileDim(i)) of b.
func (m *SymMatrix) rowBlock(b *la.Mat, i int) *la.Mat {
	return b.View(i*m.NB, 0, m.TileDim(i), b.Cols)
}

// ForwardSolveMat solves L·X = B in place for a factored matrix, where B is
// n×r (multi-RHS). The sweep is sequential over tile rows; each update is a
// BLAS3 call, so the multi-RHS form amortizes the factor traffic across
// columns — the shape the prediction-variance computation needs.
//
// B is processed in NB-wide column blocks, making an n×r solve the exact
// concatenation of independent n×NB solves: the GEMM kernel dispatch never
// sees a width that depends on r, so callers that chunk their right-hand
// sides (the bounded-memory prediction-variance path) get bitwise-identical
// results to the one-shot call.
func (m *SymMatrix) ForwardSolveMat(b *la.Mat) {
	if b.Rows != m.N {
		panic("tile: ForwardSolveMat row mismatch")
	}
	for c0 := 0; c0 < b.Cols; c0 += m.NB {
		bc := b.View(0, c0, b.Rows, min(m.NB, b.Cols-c0))
		for i := 0; i < m.MT; i++ {
			bi := m.rowBlock(bc, i)
			for j := 0; j < i; j++ {
				la.Gemm(-1, m.Tile(i, j), la.NoTrans, m.rowBlock(bc, j), la.NoTrans, 1, bi)
			}
			la.Trsm(la.Left, la.Lower, la.NoTrans, 1, m.Tile(i, i), bi)
		}
	}
}

// BackwardSolveMat solves Lᵀ·X = B in place for a factored matrix (B n×r),
// with the same NB-wide column blocking as ForwardSolveMat.
func (m *SymMatrix) BackwardSolveMat(b *la.Mat) {
	if b.Rows != m.N {
		panic("tile: BackwardSolveMat row mismatch")
	}
	for c0 := 0; c0 < b.Cols; c0 += m.NB {
		bc := b.View(0, c0, b.Rows, min(m.NB, b.Cols-c0))
		for i := m.MT - 1; i >= 0; i-- {
			bi := m.rowBlock(bc, i)
			for j := m.MT - 1; j > i; j-- {
				la.Gemm(-1, m.Tile(j, i), la.Transpose, m.rowBlock(bc, j), la.NoTrans, 1, bi)
			}
			la.Trsm(la.Left, la.Lower, la.Transpose, 1, m.Tile(i, i), bi)
		}
	}
}
