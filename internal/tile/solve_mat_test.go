package tile

import (
	"testing"

	"repro/internal/la"
	"repro/internal/rng"
)

func TestSolveMatMatchesDenseCholesky(t *testing.T) {
	n := 50
	a := spd(n, 51)
	ref := a.Clone()
	if err := la.Potrf(ref); err != nil {
		t.Fatal(err)
	}
	m := FromDense(a, 12)
	if err := Cholesky(m, 3); err != nil {
		t.Fatal(err)
	}
	r := rng.New(52)
	const nrhs = 4
	b := la.NewMat(n, nrhs)
	for i := range b.Data {
		b.Data[i] = r.Norm()
	}
	want := b.Clone()
	la.Trsm(la.Left, la.Lower, la.NoTrans, 1, ref, want)
	la.Trsm(la.Left, la.Lower, la.Transpose, 1, ref, want)
	got := b.Clone()
	m.ForwardSolveMat(got)
	m.BackwardSolveMat(got)
	if !got.Equalish(want, 1e-8) {
		t.Fatal("tile multi-RHS solve disagrees with dense")
	}
}

func TestForwardSolveMatMatchesVector(t *testing.T) {
	n := 37
	a := spd(n, 53)
	m := FromDense(a, 10)
	if err := Cholesky(m, 2); err != nil {
		t.Fatal(err)
	}
	r := rng.New(54)
	col := make([]float64, n)
	r.NormSlice(col)
	b := la.NewMat(n, 1)
	for i, v := range col {
		b.Set(i, 0, v)
	}
	if err := ForwardSolve(m, col, 2); err != nil {
		t.Fatal(err)
	}
	m.ForwardSolveMat(b)
	for i := 0; i < n; i++ {
		if d := b.At(i, 0) - col[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("matrix and vector forward solves disagree at %d", i)
		}
	}
}
