package tile

import (
	"math"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/runtime"
)

func genPoints(n int) []geom.Point {
	r := rng.New(7)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64(), Y: r.Float64()}
	}
	return pts
}

func genKernel() *cov.Kernel {
	return cov.NewKernel(cov.Params{Variance: 1.2, Range: 0.15, Smoothness: 0.5})
}

func TestFillKernelParallelMatchesSequential(t *testing.T) {
	const n, nb = 331, 64 // odd n: ragged trailing tiles
	pts := genPoints(n)
	k := genKernel()
	want := NewSym(n, nb)
	want.FillKernel(k, pts, geom.Euclidean, 1e-8)
	for _, workers := range []int{1, 2, 4, 7} {
		got := NewSym(n, nb)
		FillKernelParallel(got, k, pts, geom.Euclidean, 1e-8, workers)
		if !got.ToDense().Equalish(want.ToDense(), 0) {
			t.Fatalf("workers=%d: parallel fill differs from sequential", workers)
		}
	}
}

func TestGenCholeskyMatchesFillThenFactor(t *testing.T) {
	const n, nb = 300, 64
	pts := genPoints(n)
	k := genKernel()
	want := NewSym(n, nb)
	want.FillKernel(k, pts, geom.Euclidean, 1e-8)
	if err := Cholesky(want, 1); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got := NewSym(n, nb)
		spec := &GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-8}
		if err := GenCholesky(got, spec, workers); err != nil {
			t.Fatal(err)
		}
		d := got.ToDense()
		w := want.ToDense()
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if math.Abs(d.At(i, j)-w.At(i, j)) > 1e-11*math.Max(1, math.Abs(w.At(i, j))) {
					t.Fatalf("workers=%d: factor mismatch at (%d,%d): %g vs %g", workers, i, j, d.At(i, j), w.At(i, j))
				}
			}
		}
	}
}

// TestGenCholeskyGraphReexecutable re-runs one cached graph with an updated
// kernel between executions — the reuse contract core.Fit depends on.
func TestGenCholeskyGraphReexecutable(t *testing.T) {
	const n, nb = 200, 64
	pts := genPoints(n)
	m := NewSym(n, nb)
	spec := &GenSpec{Pts: pts, Metric: geom.Euclidean}
	g, _ := BuildGenCholeskyGraph(m, spec, true)
	for _, rangeP := range []float64{0.1, 0.2, 0.05} {
		spec.K = cov.NewKernel(cov.Params{Variance: 1, Range: rangeP, Smoothness: 0.5})
		spec.Nugget = 1e-8
		if err := g.Execute(runtime.ExecOptions{Workers: 4}); err != nil {
			t.Fatal(err)
		}
		// fresh matrix factored from scratch must agree
		want := NewSym(n, nb)
		want.FillKernel(spec.K, pts, geom.Euclidean, 1e-8)
		if err := Cholesky(want, 1); err != nil {
			t.Fatal(err)
		}
		d, w := m.ToDense(), want.ToDense()
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				if math.Abs(d.At(i, j)-w.At(i, j)) > 1e-11*math.Max(1, math.Abs(w.At(i, j))) {
					t.Fatalf("range=%g: reused-graph factor mismatch at (%d,%d)", rangeP, i, j)
				}
			}
		}
	}
}
