// Package tile implements the Chameleon substitute: tile-layout symmetric
// matrices and the tiled dense algorithms (Cholesky factorization,
// triangular solves, log-determinant) expressed as task graphs over the
// runtime package. This is the paper's "full-tile" computation mode.
package tile

import (
	"fmt"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
)

// SymMatrix is an n×n symmetric matrix stored as the lower triangle of a
// grid of square tiles of edge NB (the trailing tile row/column may be
// smaller when NB does not divide n).
type SymMatrix struct {
	N  int
	NB int
	MT int // number of tile rows/cols
	// tiles[i][j] for j <= i
	tiles [][]*la.Mat
}

// NewSym allocates a zeroed tiled symmetric matrix.
func NewSym(n, nb int) *SymMatrix {
	if n <= 0 || nb <= 0 {
		panic(fmt.Sprintf("tile: invalid dims n=%d nb=%d", n, nb))
	}
	mt := (n + nb - 1) / nb
	tiles := make([][]*la.Mat, mt)
	for i := 0; i < mt; i++ {
		tiles[i] = make([]*la.Mat, i+1)
		for j := 0; j <= i; j++ {
			tiles[i][j] = la.NewMat(tileDim(n, nb, i), tileDim(n, nb, j))
		}
	}
	return &SymMatrix{N: n, NB: nb, MT: mt, tiles: tiles}
}

func tileDim(n, nb, i int) int {
	d := n - i*nb
	if d > nb {
		d = nb
	}
	return d
}

// TileDim returns the edge length of tile row/column i.
func (m *SymMatrix) TileDim(i int) int { return tileDim(m.N, m.NB, i) }

// Tile returns tile (i, j) with j ≤ i.
func (m *SymMatrix) Tile(i, j int) *la.Mat {
	if j > i {
		panic("tile: upper-triangle tile requested from symmetric storage")
	}
	return m.tiles[i][j]
}

// FillKernel populates the matrix from a covariance kernel over pts (the
// ExaGeoStat "matrix generation" stage). The nugget is added to diagonal
// entries.
func (m *SymMatrix) FillKernel(k *cov.Kernel, pts []geom.Point, metric geom.Metric, nugget float64) {
	if len(pts) != m.N {
		panic(fmt.Sprintf("tile: %d points for n=%d", len(pts), m.N))
	}
	for i := 0; i < m.MT; i++ {
		ri := pts[i*m.NB : i*m.NB+m.TileDim(i)]
		for j := 0; j <= i; j++ {
			rj := pts[j*m.NB : j*m.NB+m.TileDim(j)]
			k.Block(m.tiles[i][j], ri, rj, metric)
		}
		if nugget != 0 {
			d := m.tiles[i][i]
			for a := 0; a < d.Rows; a++ {
				d.Set(a, a, d.At(a, a)+nugget)
			}
		}
	}
}

// ToDense gathers the tiles into a full symmetric dense matrix (testing and
// small-problem interop).
func (m *SymMatrix) ToDense() *la.Mat {
	out := la.NewMat(m.N, m.N)
	for i := 0; i < m.MT; i++ {
		for j := 0; j <= i; j++ {
			t := m.tiles[i][j]
			for a := 0; a < t.Rows; a++ {
				for b := 0; b < t.Cols; b++ {
					v := t.At(a, b)
					out.Set(i*m.NB+a, j*m.NB+b, v)
					out.Set(j*m.NB+b, i*m.NB+a, v)
				}
			}
		}
	}
	return out
}

// FromDense scatters a dense symmetric matrix into tile layout.
func FromDense(a *la.Mat, nb int) *SymMatrix {
	if a.Rows != a.Cols {
		panic("tile: FromDense requires square input")
	}
	m := NewSym(a.Rows, nb)
	for i := 0; i < m.MT; i++ {
		for j := 0; j <= i; j++ {
			t := m.tiles[i][j]
			for x := 0; x < t.Rows; x++ {
				for y := 0; y < t.Cols; y++ {
					t.Set(x, y, a.At(i*m.NB+x, j*m.NB+y))
				}
			}
		}
	}
	return m
}

// Bytes returns the memory footprint of the stored tiles.
func (m *SymMatrix) Bytes() int64 {
	var b int64
	for i := range m.tiles {
		for _, t := range m.tiles[i] {
			b += int64(t.Rows) * int64(t.Cols) * 8
		}
	}
	return b
}

// Vector is a tile-partitioned column vector aligned with a SymMatrix.
type Vector struct {
	N  int
	NB int
	MT int
	// segs[i] is an la.Mat view of segment i (TileDim(i) × 1)
	segs []*la.Mat
	data []float64
}

// NewVector wraps data (length n) in tile-aligned segments. The segments
// alias data.
func NewVector(data []float64, nb int) *Vector {
	n := len(data)
	mt := (n + nb - 1) / nb
	v := &Vector{N: n, NB: nb, MT: mt, data: data}
	v.segs = make([]*la.Mat, mt)
	for i := 0; i < mt; i++ {
		d := tileDim(n, nb, i)
		v.segs[i] = la.NewMatFrom(d, 1, data[i*nb:i*nb+d])
	}
	return v
}

// Seg returns segment i as a column matrix view.
func (v *Vector) Seg(i int) *la.Mat { return v.segs[i] }

// Data returns the underlying contiguous storage.
func (v *Vector) Data() []float64 { return v.data }
