package tile

import (
	"fmt"
	"sync"

	"repro/internal/la"
	"repro/internal/runtime"
)

// snapPool recycles the tile snapshot buffers the executor's retry path
// allocates via the SnapshotFn hooks below.
var snapPool sync.Pool

func snapBuf(n int) []float64 {
	if v := snapPool.Get(); v != nil {
		b := v.([]float64)
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

func putSnapBuf(b []float64) { snapPool.Put(b) } //nolint:staticcheck // slice header churn is negligible here

// snapshotMat returns a SnapshotFn capturing the contents of t into a pooled
// buffer, so tasks mutating t in place can be replayed after a failure.
func snapshotMat(t *la.Mat) func() (restore, release func()) {
	return func() (restore, release func()) {
		src := t.Data[:t.Rows*t.Stride]
		buf := snapBuf(len(src))
		copy(buf, src)
		return func() { copy(src, buf); putSnapBuf(buf) },
			func() { putSnapBuf(buf) }
	}
}

// FlopsPOTRF etc. are the classical per-tile flop counts used both for task
// priorities and for the simulated executors.
func FlopsPOTRF(nb int) float64 { f := float64(nb); return f * f * f / 3 }

// FlopsTRSM is the cost of a triangular solve with an nb×nb factor applied
// to an m×nb (or nb×m) panel.
func FlopsTRSM(nb, m int) float64 { return float64(nb) * float64(nb) * float64(m) }

// FlopsSYRK is the cost of an nb×nb symmetric rank-k update with k columns.
func FlopsSYRK(nb, k int) float64 { return float64(nb) * float64(nb) * float64(k) }

// FlopsGEMM is the cost of an (m×k)·(k×n) multiply-accumulate.
func FlopsGEMM(m, k, n int) float64 { return 2 * float64(m) * float64(k) * float64(n) }

// BuildCholeskyGraph inserts the tiled right-looking Cholesky DAG
// (POTRF/TRSM/SYRK/GEMM per tile, the Chameleon dpotrf algorithm) into a new
// graph. When bind is true the tasks carry real Run closures mutating m in
// place; otherwise the graph is structural only (used by the distributed
// simulator). Handles are tagged with i*MT+j so owners can be derived.
func BuildCholeskyGraph(m *SymMatrix, bind bool) (*runtime.Graph, [][]*runtime.Handle) {
	g := runtime.NewGraph()
	hs := newTileHandles(g, m)
	addCholeskyTasks(g, m, hs, bind)
	return g, hs
}

// newTileHandles registers one data handle per stored tile.
func newTileHandles(g *runtime.Graph, m *SymMatrix) [][]*runtime.Handle {
	hs := make([][]*runtime.Handle, m.MT)
	for i := 0; i < m.MT; i++ {
		hs[i] = make([]*runtime.Handle, i+1)
		for j := 0; j <= i; j++ {
			bytes := int64(m.TileDim(i)) * int64(m.TileDim(j)) * 8
			hs[i][j] = g.NewHandle(fmt.Sprintf("A[%d,%d]", i, j), bytes, int64(i)*int64(m.MT)+int64(j))
			hs[i][j].SnapshotFn = snapshotMat(m.Tile(i, j))
		}
	}
	return hs
}

// addCholeskyTasks inserts the POTRF/TRSM/SYRK/GEMM task sweep over the
// given tile handles (shared by BuildCholeskyGraph and the combined
// generation+factorization graph in gen.go).
func addCholeskyTasks(g *runtime.Graph, m *SymMatrix, hs [][]*runtime.Handle, bind bool) {
	mt := m.MT
	for k := 0; k < mt; k++ {
		k := k
		nbk := m.TileDim(k)
		var run func()
		if bind {
			akk := m.Tile(k, k)
			run = func() {
				if err := la.Potrf(akk); err != nil {
					panic(err)
				}
			}
		}
		g.AddTask(runtime.Task{
			Name:     "potrf",
			Flops:    FlopsPOTRF(nbk),
			Priority: 3 * (mt - k), // panel tasks drive the critical path
			Run:      run,
			Accesses: []runtime.Access{{Handle: hs[k][k], Mode: runtime.ReadWrite}},
		})
		for i := k + 1; i < mt; i++ {
			i := i
			var runT func()
			if bind {
				akk := m.Tile(k, k)
				aik := m.Tile(i, k)
				runT = func() { la.Trsm(la.Right, la.Lower, la.Transpose, 1, akk, aik) }
			}
			g.AddTask(runtime.Task{
				Name:     "trsm",
				Flops:    FlopsTRSM(nbk, m.TileDim(i)),
				Priority: 2 * (mt - i),
				Run:      runT,
				Accesses: []runtime.Access{
					{Handle: hs[k][k], Mode: runtime.Read},
					{Handle: hs[i][k], Mode: runtime.ReadWrite},
				},
			})
		}
		for i := k + 1; i < mt; i++ {
			i := i
			var runS func()
			if bind {
				aik := m.Tile(i, k)
				aii := m.Tile(i, i)
				runS = func() { la.Syrk(la.Lower, -1, aik, la.NoTrans, 1, aii) }
			}
			g.AddTask(runtime.Task{
				Name:  "syrk",
				Flops: FlopsSYRK(m.TileDim(i), nbk),
				Run:   runS,
				Accesses: []runtime.Access{
					{Handle: hs[i][k], Mode: runtime.Read},
					{Handle: hs[i][i], Mode: runtime.ReadWrite},
				},
			})
			for j := k + 1; j < i; j++ {
				j := j
				var runG func()
				if bind {
					aik := m.Tile(i, k)
					ajk := m.Tile(j, k)
					aij := m.Tile(i, j)
					runG = func() { la.Gemm(-1, aik, la.NoTrans, ajk, la.Transpose, 1, aij) }
				}
				g.AddTask(runtime.Task{
					Name:  "gemm",
					Flops: FlopsGEMM(m.TileDim(i), nbk, m.TileDim(j)),
					Run:   runG,
					Accesses: []runtime.Access{
						{Handle: hs[i][k], Mode: runtime.Read},
						{Handle: hs[j][k], Mode: runtime.Read},
						{Handle: hs[i][j], Mode: runtime.ReadWrite},
					},
				})
			}
		}
	}
}

// Cholesky factors m in place (lower tiles hold L on return) using the task
// runtime with the given worker count. It returns la.ErrNotPositiveDefinite
// (wrapped) if a diagonal pivot fails.
func Cholesky(m *SymMatrix, workers int) error {
	g, _ := BuildCholeskyGraph(m, true)
	return g.Execute(runtime.ExecOptions{Workers: workers})
}

// LogDet returns log|A| = 2·Σ log L_ii from a factored matrix.
func (m *SymMatrix) LogDet() float64 {
	var s float64
	for i := 0; i < m.MT; i++ {
		s += la.LogDetFromChol(m.Tile(i, i))
	}
	// LogDetFromChol already multiplies by 2 per tile
	return s
}

// BuildForwardSolveGraph inserts the tiled forward substitution L·x = b
// (x overwrites b) into a new graph; bind as in BuildCholeskyGraph.
func BuildForwardSolveGraph(m *SymMatrix, b *Vector, bind bool) *runtime.Graph {
	g := runtime.NewGraph()
	lh := make([][]*runtime.Handle, m.MT)
	bh := make([]*runtime.Handle, m.MT)
	for i := 0; i < m.MT; i++ {
		lh[i] = make([]*runtime.Handle, i+1)
		for j := 0; j <= i; j++ {
			lh[i][j] = g.NewHandle(fmt.Sprintf("L[%d,%d]", i, j), int64(m.TileDim(i))*int64(m.TileDim(j))*8, int64(i)*int64(m.MT)+int64(j))
		}
		bh[i] = g.NewHandle(fmt.Sprintf("b[%d]", i), int64(m.TileDim(i))*8, int64(i)*int64(m.MT)+int64(i))
		bh[i].SnapshotFn = snapshotMat(b.Seg(i))
	}
	for i := 0; i < m.MT; i++ {
		for j := 0; j < i; j++ {
			i, j := i, j
			var run func()
			if bind {
				lij := m.Tile(i, j)
				run = func() { la.Gemm(-1, lij, la.NoTrans, b.Seg(j), la.NoTrans, 1, b.Seg(i)) }
			}
			g.AddTask(runtime.Task{
				Name:  "gemv",
				Flops: FlopsGEMM(m.TileDim(i), m.TileDim(j), 1),
				Run:   run,
				Accesses: []runtime.Access{
					{Handle: lh[i][j], Mode: runtime.Read},
					{Handle: bh[j], Mode: runtime.Read},
					{Handle: bh[i], Mode: runtime.ReadWrite},
				},
			})
		}
		i := i
		var run func()
		if bind {
			lii := m.Tile(i, i)
			run = func() { la.Trsm(la.Left, la.Lower, la.NoTrans, 1, lii, b.Seg(i)) }
		}
		g.AddTask(runtime.Task{
			Name:     "trsv",
			Flops:    float64(m.TileDim(i)) * float64(m.TileDim(i)),
			Priority: 1,
			Run:      run,
			Accesses: []runtime.Access{
				{Handle: lh[i][i], Mode: runtime.Read},
				{Handle: bh[i], Mode: runtime.ReadWrite},
			},
		})
	}
	return g
}

// ForwardSolve solves L·x = b in place over the runtime.
func ForwardSolve(m *SymMatrix, b []float64, workers int) error {
	v := NewVector(b, m.NB)
	g := BuildForwardSolveGraph(m, v, true)
	return g.Execute(runtime.ExecOptions{Workers: workers})
}

// BackwardSolve solves Lᵀ·x = b in place (sequential tile loop; the backward
// sweep is cheap relative to factorization and used only on vectors).
func BackwardSolve(m *SymMatrix, b []float64) {
	v := NewVector(b, m.NB)
	for i := m.MT - 1; i >= 0; i-- {
		for j := m.MT - 1; j > i; j-- {
			// b_i -= L[j][i]^T b_j
			la.Gemm(-1, m.Tile(j, i), la.Transpose, v.Seg(j), la.NoTrans, 1, v.Seg(i))
		}
		la.Trsm(la.Left, la.Lower, la.Transpose, 1, m.Tile(i, i), v.Seg(i))
	}
}
