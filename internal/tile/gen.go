// Covariance generation as runtime tasks: the ExaGeoStat "dcmg" codelets.
// Each stored tile gets one generation task that writes the tile's data
// handle, so factorization tasks depend on generation tile-by-tile and the
// scheduler overlaps matrix generation with the start of the Cholesky sweep
// exactly as the paper's StarPU version does.
package tile

import (
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// cntDcmg counts executed covariance-generation tasks — compare against the
// tile count to see how much regeneration the optimizer's θ sweep performed.
var cntDcmg = obs.GetCounter("tile.dcmg.calls")

// GenSpec carries the inputs of covariance generation. The dcmg task
// closures read the fields when they RUN, not when the graph is built:
// callers that cache the task graph across optimizer iterations (core.Fit)
// swap in a new Kernel and Nugget between executions and re-run the same
// graph. Pts and Metric must stay fixed for the graph's lifetime.
type GenSpec struct {
	K      *cov.Kernel
	Pts    []geom.Point
	Metric geom.Metric
	Nugget float64
}

// dcmgFlopsPerElem approximates the arithmetic cost of one Matérn kernel
// evaluation (distance + exp/pow/Bessel) for the simulated executors and
// task priorities.
const dcmgFlopsPerElem = 40

// FlopsDCMG is the generation cost of a di×dj tile.
func FlopsDCMG(di, dj int) float64 { return dcmgFlopsPerElem * float64(di) * float64(dj) }

// AddGenTasks inserts one dcmg task per stored tile of m, each writing its
// tile handle. Tiles in low column blocks get higher priority: the panel
// factorization consumes column k first, so generating left columns early
// shortens the critical path.
func AddGenTasks(g *runtime.Graph, m *SymMatrix, spec *GenSpec, hs [][]*runtime.Handle, bind bool) {
	mt := m.MT
	for i := 0; i < mt; i++ {
		for j := 0; j <= i; j++ {
			i, j := i, j
			var run func()
			if bind {
				dst := m.Tile(i, j)
				run = func() {
					cntDcmg.Inc()
					ri := spec.Pts[i*m.NB : i*m.NB+m.TileDim(i)]
					rj := spec.Pts[j*m.NB : j*m.NB+m.TileDim(j)]
					spec.K.Block(dst, ri, rj, spec.Metric)
					if i == j && spec.Nugget != 0 {
						for a := 0; a < dst.Rows; a++ {
							dst.Set(a, a, dst.At(a, a)+spec.Nugget)
						}
					}
				}
			}
			g.AddTask(runtime.Task{
				Name:     "dcmg",
				Flops:    FlopsDCMG(m.TileDim(i), m.TileDim(j)),
				Priority: 4 * (mt - j),
				Run:      run,
				Accesses: []runtime.Access{{Handle: hs[i][j], Mode: runtime.Write}},
			})
		}
	}
}

// BuildGenCholeskyGraph builds the combined generation + factorization DAG:
// dcmg tasks write every tile, POTRF/TRSM/SYRK/GEMM tasks consume them. The
// graph is re-executable: running it again regenerates the matrix from the
// (possibly updated) spec and refactors it, which is what core's likelihood
// evaluator does once per optimizer iteration.
func BuildGenCholeskyGraph(m *SymMatrix, spec *GenSpec, bind bool) (*runtime.Graph, [][]*runtime.Handle) {
	g := runtime.NewGraph()
	hs := newTileHandles(g, m)
	AddGenTasks(g, m, spec, hs, bind)
	addCholeskyTasks(g, m, hs, bind)
	return g, hs
}

// GenCholesky generates Σ(θ) into m and factors it in place in a single
// task-graph execution, overlapping generation with factorization. It
// returns la.ErrNotPositiveDefinite (wrapped) if a pivot fails.
func GenCholesky(m *SymMatrix, spec *GenSpec, workers int) error {
	g, _ := BuildGenCholeskyGraph(m, spec, true)
	return g.Execute(runtime.ExecOptions{Workers: workers})
}

// FillKernelParallel populates m from the kernel like FillKernel but runs
// the per-tile dcmg tasks on the runtime's worker pool.
func FillKernelParallel(m *SymMatrix, k *cov.Kernel, pts []geom.Point, metric geom.Metric, nugget float64, workers int) {
	if len(pts) != m.N {
		panic("tile: FillKernelParallel point count mismatch")
	}
	if workers < 2 {
		m.FillKernel(k, pts, metric, nugget)
		return
	}
	spec := &GenSpec{K: k, Pts: pts, Metric: metric, Nugget: nugget}
	g := runtime.NewGraph()
	hs := newTileHandles(g, m)
	AddGenTasks(g, m, spec, hs, true)
	if err := g.Execute(runtime.ExecOptions{Workers: workers}); err != nil {
		// generation tasks cannot fail numerically; a panic here is a
		// programming error
		panic(err)
	}
}
