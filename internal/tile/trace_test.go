package tile

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/runtime"
)

// TestCholeskyChromeTraceGolden executes a small tiled Cholesky DAG with
// tracing and validates the exported Chrome trace-event JSON against the
// golden structure: one complete ("X") event per task, kernel-name counts
// matching the DAG exactly (POTRF/TRSM/SYRK/GEMM for MT=4), metadata rows
// for the process and every worker lane, flop annotations agreeing with the
// closed-form per-kernel costs, and the envelope Perfetto expects.
func TestCholeskyChromeTraceGolden(t *testing.T) {
	const n, nb, workers = 16, 4, 2
	a := spd(n, 5)
	m := FromDense(a, nb)
	g, _ := BuildCholeskyGraph(m, true)

	wantByKernel := g.CountByName()
	// MT = 4 right-looking Cholesky: sum_k [1 potrf + (MT-1-k) trsm +
	// (MT-1-k) syrk + C(MT-1-k, 2) gemm]
	golden := map[string]int{"potrf": 4, "trsm": 6, "syrk": 6, "gemm": 4}
	for k, w := range golden {
		if wantByKernel[k] != w {
			t.Fatalf("DAG kernel count %s = %d, want %d", k, wantByKernel[k], w)
		}
	}

	tr, err := g.ExecuteTraced(runtime.ExecOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, "cholesky n=16 nb=4"); err != nil {
		t.Fatal(err)
	}

	var file struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TsUS  float64        `json:"ts"`
			DurUS float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want \"ms\"", file.DisplayTimeUnit)
	}

	gotByKernel := map[string]int{}
	meta := map[string]int{}
	wall := float64(tr.Wall.Microseconds())
	for _, e := range file.TraceEvents {
		switch e.Phase {
		case "M":
			meta[e.Name]++
		case "X":
			gotByKernel[e.Name]++
			if e.Cat != "task" {
				t.Fatalf("task event category %q", e.Cat)
			}
			if e.TsUS < 0 || e.TsUS+e.DurUS > wall+1 {
				t.Fatalf("event outside [0, wall]: %+v (wall %g µs)", e, wall)
			}
			if e.TID < 0 || e.TID >= workers {
				t.Fatalf("worker lane %d out of range", e.TID)
			}
			flops, ok := e.Args["flops"].(float64)
			if !ok || flops <= 0 {
				t.Fatalf("event %s missing flop annotation: %v", e.Name, e.Args)
			}
			switch e.Name {
			case "potrf":
				if flops != FlopsPOTRF(nb) {
					t.Fatalf("potrf flops %g, want %g", flops, FlopsPOTRF(nb))
				}
			case "gemm":
				if flops != FlopsGEMM(nb, nb, nb) {
					t.Fatalf("gemm flops %g, want %g", flops, FlopsGEMM(nb, nb, nb))
				}
			}
			if b, ok := e.Args["bytes"].(float64); !ok || b <= 0 {
				t.Fatalf("event %s missing byte annotation: %v", e.Name, e.Args)
			}
		default:
			t.Fatalf("unexpected phase %q", e.Phase)
		}
	}
	for k, w := range golden {
		if gotByKernel[k] != w {
			t.Fatalf("trace kernel count %s = %d, want %d (all: %v)", k, gotByKernel[k], w, gotByKernel)
		}
	}
	if meta["process_name"] != 1 || meta["thread_name"] != workers {
		t.Fatalf("metadata rows: %v", meta)
	}
}
