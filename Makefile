GO ?= go

.PHONY: build test bench verify kernels tlrbench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: vet plus the full suite under the race
# detector (the parallel assembly, scheduler and evaluator paths are the
# point of the -race run).
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# kernels regenerates the compute-layer micro-benchmark snapshot.
kernels:
	$(GO) run ./cmd/paperbench -kernels BENCH_kernels.json

# tlrbench regenerates the parallel TLR pipeline snapshot.
tlrbench:
	$(GO) run ./cmd/paperbench -tlr BENCH_tlr.json

clean:
	$(GO) clean ./...
