GO ?= go

.PHONY: build test bench verify kernels tlrbench distbench trace chaos chaosbench orderbench modesbench serve servebench oocbench oocsmoke elasticbench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: vet, a focused uncached race pass over the
# message-passing, session, metrics, spatial-ordering, HODLR and out-of-core
# tile-store layers (the rank goroutines, mailboxes, backend registry and
# caches, lock-free instruments, the ordering determinism contract, the
# hierarchical factorization's task graph, and the store's pin/evict
# concurrency are the point), then the full suite under the race detector
# (parallel assembly and scheduler paths).
verify:
	$(GO) vet ./...
	$(GO) test -race -count=1 -timeout 45m ./internal/mpi/... ./internal/core/... ./internal/obs/... ./internal/geom/... ./internal/hodlr/... ./internal/tlr/store/...
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# kernels regenerates the compute-layer micro-benchmark snapshot.
kernels:
	$(GO) run ./cmd/paperbench -kernels BENCH_kernels.json

# tlrbench regenerates the parallel TLR pipeline snapshot.
tlrbench:
	$(GO) run ./cmd/paperbench -tlr BENCH_tlr.json

# distbench regenerates the distributed TLR snapshot (likelihood agreement
# across process grids + communication-model validation).
distbench:
	$(GO) run ./cmd/paperbench -dist BENCH_dist.json

# trace regenerates the schedule report of the traced dense+TLR Cholesky
# executions (BENCH_trace.json) plus the Chrome trace artifact
# (BENCH_trace.trace.json — open in ui.perfetto.dev).
trace:
	$(GO) run ./cmd/paperbench -trace BENCH_trace.json

# chaos runs the fault-tolerance suite under the race detector: seeded
# chaos-injection determinism, task retry/replay, rank-failure recovery and
# the nugget-escalation / dense-fallback degradation paths.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Retry|Fault|NuggetEscalation|Detile|DenseTile|MaxRank|CappedCholesky|ForceMiss|RankPanic|CleanError|SendDrop|SendDelay|RecvTimeout|Simulate' ./internal/chaos/... ./internal/runtime/... ./internal/mpi/... ./internal/tlr/... ./internal/core/...

# chaosbench regenerates the fault-tolerance snapshot (retry overhead +
# chaos-injected recovery on the n=1600 TLR Cholesky).
chaosbench:
	$(GO) run ./cmd/paperbench -chaos BENCH_chaos.json

# orderbench regenerates the spatial-ordering sweep (none/morton/hilbert/
# kdblock x uniform/clustered geometries: tile-rank histograms, TLR storage,
# factorization makespan, per-rank comm bytes, cross-ordering agreement).
orderbench:
	$(GO) run ./cmd/paperbench -order BENCH_order.json

# modesbench races every registered evaluator backend (full-block/full-tile/
# tlr/hodlr) on one clustered dataset: first/steady eval time, covariance
# storage, rank structure, predict throughput, agreement with dense.
modesbench:
	$(GO) run ./cmd/paperbench -modes BENCH_modes.json

# oocbench regenerates the out-of-core proof: the n=100k TLR likelihood
# under a memory budget several times below the matrix (bitwise vs the
# unbounded run), the interrupted-fit checkpoint resume, and the 2.4M-point
# Mississippi cluster replay. Heavy — tens of minutes on one core.
oocbench:
	$(GO) run ./cmd/paperbench -ooc BENCH_ooc.json

# oocsmoke is the fast slice of the out-of-core layer: store eviction under
# -race, eviction-under-retry bitwise replay, the bounded-session and
# checkpoint-resume equivalences, and the real SIGKILL-and-resume subprocess
# smoke.
oocsmoke:
	$(GO) test -race -count=1 -run 'OOC|Pin|Store|Evict|Blob|MemBudget|Checkpoint|KillAndResume' ./internal/tlr/... ./internal/runtime/... ./internal/core/... ./internal/dataio/...

# elasticbench is the elastic-recovery smoke: the shrink-to-survivors suite
# under the race detector (membership epochs, owner remap, kill-during-panel
# and kill-during-allreduce recovery, budget enforcement), then the measured
# snapshot — no-fault overhead of arming recovery plus a 6-rank likelihood
# that loses a rank mid-Cholesky and must finish bitwise on 5 survivors
# (BENCH_elastic.json).
elasticbench:
	$(GO) test -race -count=1 -run 'Elastic|RankDeath|MarkDead|Shrink|Stale|KillDuring|OwnerMap|RecvFromDead|PanelKill|Readyz' ./internal/mpi/... ./internal/chaos/... ./internal/core/... ./internal/serve/...
	$(GO) run ./cmd/paperbench -elastic BENCH_elastic.json

# serve runs the kriging service (cmd/exaserve) on :8080.
serve:
	$(GO) run ./cmd/exaserve -addr :8080

# servebench regenerates the kriging-service load-test snapshot: boots
# exaserve in-process, fires 10k concurrent predicts through the Go client,
# reports exact p50/p99 latency, predictions/sec, bitwise agreement with the
# direct Session computation, and the one-factorization evidence counters.
servebench:
	$(GO) run ./cmd/paperbench -serve BENCH_serve.json

clean:
	$(GO) clean ./...
