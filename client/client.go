// Package client is the Go client for the exaserve kriging service
// (cmd/exaserve). It speaks the internal/serve wire protocol — the request
// and response types are re-exported here as aliases so a program can depend
// on this package alone:
//
//	c := client.New("http://localhost:8080")
//	info, _ := c.CreateModel(ctx, client.CreateModelRequest{
//		Name: "field", Points: pts, Z: z,
//		Theta: &client.Theta{Variance: 1, Range: 0.1, Smoothness: 0.5},
//	})
//	pred, _ := c.Predict(ctx, "field", query, true)
//
// Non-2xx replies surface as *APIError carrying the HTTP status and the
// server's message, so callers can distinguish load shedding (503) from
// caller bugs (4xx).
//
// The client targets the versioned /v1/ wire API; servers also keep the
// original unversioned paths mounted as aliases for older clients.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/serve"
)

// Wire types, aliased from the server so the two cannot drift.
type (
	Point              = serve.Point
	Theta              = serve.Theta
	ModelConfig        = serve.ModelConfig
	FitSpec            = serve.FitSpec
	CreateModelRequest = serve.CreateModelRequest
	ModelInfo          = serve.ModelInfo
	PredictRequest     = serve.PredictRequest
	PredictResponse    = serve.PredictResponse
	MetricsResponse    = serve.MetricsResponse
)

// APIError is a non-2xx reply from the server.
type APIError struct {
	Status  int    // HTTP status code
	Message string // server-provided error message
}

func (e *APIError) Error() string {
	return fmt.Sprintf("exaserve: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// IsOverload reports whether the server shed the request (queue full or
// shutting down) — the retryable class of failure.
func (e *APIError) IsOverload() bool { return e.Status == http.StatusServiceUnavailable }

// Client talks to one exaserve instance. The zero value is not usable; call
// New. Safe for concurrent use by any number of goroutines.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the server at base (e.g. "http://localhost:8080").
// The default http.Client is used; see NewWithHTTPClient to tune transport
// limits for high-concurrency load generation.
func New(base string) *Client { return NewWithHTTPClient(base, http.DefaultClient) }

// NewWithHTTPClient returns a client using the supplied http.Client.
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, hc: hc}
}

// roundTrip runs one JSON request/reply exchange. A nil in sends no body; a
// nil out discards the reply body.
func (c *Client) roundTrip(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("exaserve: encode request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e serve.ErrorResponse
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return &APIError{Status: resp.StatusCode, Message: e.Error}
		}
		return &APIError{Status: resp.StatusCode, Message: string(bytes.TrimSpace(msg))}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("exaserve: decode reply: %w", err)
	}
	return nil
}

// CreateModel ingests a dataset as a named model, fitting θ̂ unless the
// request fixes it.
func (c *Client) CreateModel(ctx context.Context, req CreateModelRequest) (ModelInfo, error) {
	var info ModelInfo
	err := c.roundTrip(ctx, http.MethodPost, "/v1/models", req, &info)
	return info, err
}

// ListModels returns every registered model.
func (c *Client) ListModels(ctx context.Context) ([]ModelInfo, error) {
	var list serve.ListModelsResponse
	err := c.roundTrip(ctx, http.MethodGet, "/v1/models", nil, &list)
	return list.Models, err
}

// GetModel returns one model's description.
func (c *Client) GetModel(ctx context.Context, name string) (ModelInfo, error) {
	var info ModelInfo
	err := c.roundTrip(ctx, http.MethodGet, "/v1/models/"+name, nil, &info)
	return info, err
}

// DeleteModel removes a model and stops its worker.
func (c *Client) DeleteModel(ctx context.Context, name string) error {
	return c.roundTrip(ctx, http.MethodDelete, "/v1/models/"+name, nil, nil)
}

// Predict returns kriging predictions at points, with conditional variance
// and 95% intervals when withVariance is set.
func (c *Client) Predict(ctx context.Context, model string, points []Point, withVariance bool) (PredictResponse, error) {
	var resp PredictResponse
	err := c.roundTrip(ctx, http.MethodPost, "/v1/models/"+model+"/predict",
		PredictRequest{Points: points, WithVariance: withVariance}, &resp)
	return resp, err
}

// Metrics returns the server's observability snapshot.
func (c *Client) Metrics(ctx context.Context) (MetricsResponse, error) {
	var m MetricsResponse
	err := c.roundTrip(ctx, http.MethodGet, "/v1/metrics", nil, &m)
	return m, err
}

// Healthz reports whether the server answers its liveness probe.
func (c *Client) Healthz(ctx context.Context) error {
	return c.roundTrip(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}
