// Command paperbench regenerates every table and figure of the paper's
// evaluation section (§VIII):
//
//	paperbench -exp fig3              # one experiment at laptop scale
//	paperbench -exp all -scale paper  # the full suite at paper scale
//	paperbench -list                  # enumerate experiments
//
// Performance figures combine real measured runs at laptop sizes with
// machine-simulated runs at the paper's sizes; statistical figures run the
// real estimation pipeline end to end (see EXPERIMENTS.md for the scale
// substitutions).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/exprt"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run (fig2..fig9, table1, table2, ablation, all)")
		scale   = flag.String("scale", "small", "experiment scale: small | paper")
		workers = flag.Int("workers", runtime.NumCPU(), "runtime worker count")
		seed    = flag.Uint64("seed", 0, "override the experiment seed (0 = default)")
		list    = flag.Bool("list", false, "list experiments and exit")
		kernels = flag.String("kernels", "", "run the compute-kernel micro-benchmarks, write the JSON report to this path (e.g. BENCH_kernels.json), and exit")
		tlrpath = flag.String("tlr", "", "run the parallel TLR assemble+compress benchmark, write the JSON report to this path (e.g. BENCH_tlr.json), and exit")
		dist    = flag.String("dist", "", "run the distributed TLR benchmark (likelihood agreement + comm-model validation), write the JSON report to this path (e.g. BENCH_dist.json), and exit")
		trace   = flag.String("trace", "", "run the traced dense+TLR Cholesky executions, write the schedule report to this path (e.g. BENCH_trace.json) plus a Chrome trace artifact (.trace.json) next to it, and exit")
		chaosp  = flag.String("chaos", "", "run the fault-tolerance benchmark (retry overhead + chaos-injected recovery on the n=1600 TLR Cholesky), write the JSON report to this path (e.g. BENCH_chaos.json), and exit")
		order   = flag.String("order", "", "run the spatial-ordering sweep (none/morton/hilbert/kdblock x uniform/clustered: tile ranks, TLR bytes, factor makespan, per-rank comm), write the JSON report to this path (e.g. BENCH_order.json), and exit")
		servep  = flag.String("serve", "", "run the kriging-service load test (boot exaserve in-process, 10k concurrent predicts: p50/p99 latency, predictions/sec, exact-match + one-factorization evidence), write the JSON report to this path (e.g. BENCH_serve.json), and exit")
		modes   = flag.String("modes", "", "race every registered evaluator backend (full-block/full-tile/tlr/hodlr) on one clustered dataset: first/steady eval time, storage, rank structure, predict throughput, agreement with dense; write the JSON report to this path (e.g. BENCH_modes.json), and exit")
		ooc     = flag.String("ooc", "", "run the out-of-core proof (n=100k TLR likelihood under a memory budget several times below the matrix, bitwise vs unbounded; interrupted-fit checkpoint resume; 2.4M-point cluster replay), write the JSON report to this path (e.g. BENCH_ooc.json), and exit")
		elastic = flag.String("elastic", "", "run the elastic-recovery benchmark (no-fault overhead of arming recovery + a 6-rank likelihood that loses a rank mid-Cholesky and must finish bitwise on 5 survivors), write the JSON report to this path (e.g. BENCH_elastic.json), and exit")
	)
	flag.Parse()

	if *kernels != "" {
		opts := exprt.Options{Out: os.Stdout, Workers: *workers, Seed: *seed}
		if err := exprt.WriteKernelBench(*kernels, opts); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *tlrpath != "" {
		opts := exprt.Options{Out: os.Stdout, Workers: *workers, Seed: *seed}
		if err := exprt.WriteTLRBench(*tlrpath, opts); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *trace != "" {
		opts := exprt.Options{Out: os.Stdout, Workers: *workers, Seed: *seed}
		if err := exprt.WriteTraceBench(*trace, opts); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *chaosp != "" {
		opts := exprt.Options{Out: os.Stdout, Workers: *workers, Seed: *seed}
		if err := exprt.WriteChaosBench(*chaosp, opts); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *servep != "" {
		opts := exprt.Options{Out: os.Stdout, Workers: *workers, Seed: *seed}
		if err := exprt.WriteServeBench(*servep, opts); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *modes != "" {
		opts := exprt.Options{Out: os.Stdout, Workers: *workers, Seed: *seed}
		if err := exprt.WriteModesBench(*modes, opts); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *order != "" {
		opts := exprt.Options{Out: os.Stdout, Workers: *workers, Seed: *seed}
		if err := exprt.WriteOrderBench(*order, opts); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *ooc != "" {
		opts := exprt.Options{Out: os.Stdout, Workers: *workers, Seed: *seed}
		if err := exprt.WriteOOCBench(*ooc, opts); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *elastic != "" {
		opts := exprt.Options{Out: os.Stdout, Workers: *workers, Seed: *seed}
		if err := exprt.WriteElasticBench(*elastic, opts); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *dist != "" {
		opts := exprt.Options{Out: os.Stdout, Workers: *workers, Seed: *seed}
		if err := exprt.WriteDistBench(*dist, opts); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range exprt.Experiments {
			fmt.Printf("%-10s %s\n", e.Name, e.Title)
		}
		return
	}

	opts := exprt.Options{Out: os.Stdout, Workers: *workers, Seed: *seed}
	switch *scale {
	case "small":
		opts.Scale = exprt.ScaleSmall
	case "paper":
		opts.Scale = exprt.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "paperbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	t0 := time.Now()
	var err error
	if *exp == "all" {
		err = exprt.RunAll(opts)
	} else {
		var e exprt.Experiment
		e, err = exprt.ByName(*exp)
		if err == nil {
			fmt.Printf("========== %s — %s ==========\n", e.Name, e.Title)
			err = e.Run(opts)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n[completed in %s]\n", time.Since(t0).Round(time.Millisecond))
}
