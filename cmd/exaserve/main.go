// Command exaserve runs the kriging-as-a-service HTTP server: a registry of
// fitted geostatistics models, each fronted by a serializing worker, exposing
// JSON endpoints for ingest, prediction with optional uncertainty, and
// observability.
//
//	exaserve -addr :8080
//
//	curl -X POST localhost:8080/models -d '{
//	  "name": "field",
//	  "points": [{"x":0.1,"y":0.2}, ...], "z": [0.4, ...],
//	  "theta": {"variance":1, "range":0.1, "smoothness":0.5}}'
//	curl -X POST localhost:8080/models/field/predict -d '{
//	  "points": [{"x":0.5,"y":0.5}], "with_variance": true}'
//	curl localhost:8080/metrics
//
// Omit "theta" to run a maximum-likelihood fit at ingest (see the "fit"
// object for options). SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		maxBatch  = flag.Int("max-batch", 0, "max points per predict request (0 = default 16384)")
		maxQueue  = flag.Int("max-queue", 0, "max queued predicts per model (0 = default 256)")
		maxModels = flag.Int("max-models", 0, "max registered models (0 = default 64)")
		maxPoints = flag.Int("max-points", 0, "max observations per model (0 = default 1000000)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxBatch:  *maxBatch,
		MaxQueue:  *maxQueue,
		MaxModels: *maxModels,
		MaxPoints: *maxPoints,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "exaserve: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "exaserve: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "exaserve: %v, draining\n", s)
	}

	srv.BeginShutdown() // readyz → 503 so balancers drain us before the listener stops
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "exaserve: shutdown: %v\n", err)
	}
	srv.Close()
}
