package main

import (
	"context"
	"errors"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/serve"
)

// bootServer starts a real exaserve instance on a loopback TCP port and
// returns a client pointed at it — the same wiring main() builds, minus the
// signal handling.
func bootServer(t *testing.T) *client.Client {
	t.Helper()
	srv := serve.New(serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Close()
	})
	return client.New("http://" + ln.Addr().String())
}

// TestEndToEndFitPredict round-trips the full service loop over real TCP:
// ingest with a maximum-likelihood fit, predict with uncertainty through the
// Go client, verify against the direct in-process computation, delete.
func TestEndToEndFitPredict(t *testing.T) {
	c := bootServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	syn, err := core.GenerateSynthetic(100, 10, cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5}, 77)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]client.Point, syn.Train.N())
	for i, p := range syn.Train.Points {
		pts[i] = client.Point{X: p.X, Y: p.Y}
	}
	start := client.Theta{Variance: 1, Range: 0.1, Smoothness: 0.5}
	info, err := c.CreateModel(ctx, client.CreateModelRequest{
		Name: "e2e", Points: pts, Z: syn.Train.Z,
		Fit: &client.FitSpec{MaxEvals: 40, FixSmoothness: true, Start: &start, Profiled: true},
	})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if !info.Fitted || info.N != 90 {
		t.Fatalf("fit info: %+v", info)
	}

	query := make([]client.Point, len(syn.TestPoints))
	for i, p := range syn.TestPoints {
		query[i] = client.Point{X: p.X, Y: p.Y}
	}
	resp, err := c.Predict(ctx, "e2e", query, true)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	if len(resp.Mean) != len(query) || len(resp.Variance) != len(query) || len(resp.CI95) != len(query) {
		t.Fatalf("predict reply shape: %+v", resp)
	}

	// The served predictions must equal the direct Session computation at the
	// fitted θ, exactly.
	sess, err := core.NewSession(syn.Train, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	theta := cov.Params{Variance: info.Theta.Variance, Range: info.Theta.Range, Smoothness: info.Theta.Smoothness}
	want, err := sess.PredictWithVariance(syn.TestPoints, theta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Mean {
		if resp.Mean[i] != want.Mean[i] || resp.Variance[i] != want.Variance[i] {
			t.Errorf("point %d: served (%v, %v) vs direct (%v, %v)",
				i, resp.Mean[i], resp.Variance[i], want.Mean[i], want.Variance[i])
		}
	}

	// MSE against held-out truth should be finite and small-ish (sanity that
	// the fit produced a usable model, not a numerical accident).
	if mse := core.MSE(resp.Mean, syn.TestZ); mse > 1 {
		t.Errorf("served predictions badly off: MSE %g", mse)
	}

	models, err := c.ListModels(ctx)
	if err != nil || len(models) != 1 {
		t.Fatalf("list: %v %v", models, err)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if metrics.Endpoints["predict"].Count == 0 {
		t.Error("metrics missing predict latencies")
	}
	if err := c.DeleteModel(ctx, "e2e"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	var apiErr *client.APIError
	if _, err := c.Predict(ctx, "e2e", query, false); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("predict after delete: %v, want 404 APIError", err)
	}
}
