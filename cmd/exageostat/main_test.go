package main

import (
	"path/filepath"
	"testing"

	exago "repro"
)

func TestParseTheta(t *testing.T) {
	th, err := parseTheta("1,0.1,0.5")
	if err != nil {
		t.Fatal(err)
	}
	if th != (exago.Theta{Variance: 1, Range: 0.1, Smoothness: 0.5}) {
		t.Fatalf("parsed %+v", th)
	}
	if _, err := parseTheta("1,0.1"); err == nil {
		t.Fatal("two components should fail")
	}
	if _, err := parseTheta("1,x,0.5"); err == nil {
		t.Fatal("non-numeric component should fail")
	}
	th, err = parseTheta(" 2 , 0.3 , 1.5 ")
	if err != nil || th.Smoothness != 1.5 {
		t.Fatalf("whitespace handling: %+v %v", th, err)
	}
}

func TestParseMode(t *testing.T) {
	for name, mode := range map[string]exago.Mode{
		"full-block": exago.FullBlock,
		"full-tile":  exago.FullTile,
		"tlr":        exago.TLR,
	} {
		cfg, err := parseMode(name, 1e-7, 64, "svd", 2)
		if err != nil || cfg.Mode != mode {
			t.Fatalf("parseMode(%q) = %+v, %v", name, cfg, err)
		}
	}
	if _, err := parseMode("hierarchical", 1e-7, 64, "svd", 2); err == nil {
		t.Fatal("unknown mode should fail")
	}
}

func TestRunSyntheticSmoke(t *testing.T) {
	cfg, err := parseMode("full-block", 0, 0, "svd", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := runSynthetic(64, 4, exago.Theta{Variance: 1, Range: 0.1, Smoothness: 0.5}, 1, cfg, 20, "", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestCSVAndModelPipeline(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "d.csv")
	modelPath := filepath.Join(dir, "m.json")

	cfg, err := parseMode("full-block", 0, 0, "svd", 1)
	if err != nil {
		t.Fatal(err)
	}
	// generate + export + save model
	if err := runSynthetic(100, 0, exago.Theta{Variance: 1, Range: 0.1, Smoothness: 0.5}, 2, cfg, 30, csvPath, modelPath, true); err != nil {
		t.Fatal(err)
	}
	// refit from CSV
	if err := runCSV(csvPath, "euclidean", 10, 3, cfg, 30, false, ""); err != nil {
		t.Fatal(err)
	}
	// predict with the saved model
	if err := runLoadedModel(modelPath, csvPath, 10, 4, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHoldOutSplit(t *testing.T) {
	rec := exago.Records{Points: make([]exago.Point, 20), Z: make([]float64, 20)}
	for i := range rec.Points {
		rec.Points[i] = exago.Point{X: float64(i), Y: float64(i)}
		rec.Z[i] = float64(i)
	}
	trP, trZ, teP, teZ := holdOut(rec, 5, 9)
	if len(trP) != 15 || len(teP) != 5 || len(trZ) != 15 || len(teZ) != 5 {
		t.Fatalf("split sizes wrong: %d/%d", len(trP), len(teP))
	}
	// no hold-out when k out of range
	trP2, _, teP2, _ := holdOut(rec, 0, 9)
	if len(trP2) != 20 || teP2 != nil {
		t.Fatal("k=0 should keep everything")
	}
}
