// Command exageostat is the operational CLI of the framework, mirroring the
// original ExaGeoStat driver: generate synthetic spatial data, estimate the
// Matérn parameters by maximum likelihood under a chosen computation mode,
// and predict held-out values.
//
//	exageostat -n 1600 -mode tlr -acc 1e-7 -predict 100
//	exageostat -n 900 -mode full-block -theta 1,0.1,0.5
//	exageostat -dataset soil -points 256 -mode tlr -acc 1e-9
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	exago "repro"
)

func main() {
	var (
		n       = flag.Int("n", 1600, "number of synthetic locations")
		nPred   = flag.Int("predict", 100, "held-out locations to predict")
		modeStr = flag.String("mode", "tlr", "computation mode: full-block | full-tile | tlr | hodlr")
		acc     = flag.Float64("acc", 1e-7, "TLR accuracy threshold")
		nb      = flag.Int("nb", 0, "tile size (0 = default)")
		comp    = flag.String("compressor", "svd", "TLR compression backend: svd | rsvd | aca")
		workers = flag.Int("workers", runtime.NumCPU(), "runtime workers")
		thetaS  = flag.String("theta", "1,0.1,0.5", "generating θ as variance,range,smoothness")
		seed    = flag.Uint64("seed", 42, "random seed")
		dataset = flag.String("dataset", "", "use a simulated real dataset instead: soil | wind")
		points  = flag.Int("points", 256, "points per region for -dataset")
		maxEval = flag.Int("maxevals", 150, "likelihood evaluation budget for the fit")
		profile = flag.Bool("profiled", false, "use the concentrated (profiled) likelihood fit")

		dataPath  = flag.String("data", "", "fit a CSV dataset (x,y,z rows) instead of generating")
		metricStr = flag.String("metric", "euclidean", "distance metric for -data: euclidean | greatcircle | greatcircle-earth-100km | chordal")
		exportCSV = flag.String("export", "", "write the generated synthetic dataset to this CSV path")
		saveModel = flag.String("save", "", "write the fitted model JSON to this path")
		loadModel = flag.String("model", "", "skip fitting: load a model JSON and predict on -data")
	)
	flag.Parse()

	cfg, err := parseMode(*modeStr, *acc, *nb, *comp, *workers)
	if err != nil {
		fatal(err)
	}

	switch {
	case *loadModel != "":
		if *dataPath == "" {
			fatal(fmt.Errorf("-model requires -data"))
		}
		if err := runLoadedModel(*loadModel, *dataPath, *nPred, *seed, cfg); err != nil {
			fatal(err)
		}
	case *dataPath != "":
		if err := runCSV(*dataPath, *metricStr, *nPred, *seed, cfg, *maxEval, *profile, *saveModel); err != nil {
			fatal(err)
		}
	case *dataset != "":
		if err := runDataset(*dataset, *points, *seed, cfg, *maxEval); err != nil {
			fatal(err)
		}
	default:
		theta, err := parseTheta(*thetaS)
		if err != nil {
			fatal(err)
		}
		if err := runSynthetic(*n, *nPred, theta, *seed, cfg, *maxEval, *exportCSV, *saveModel, *profile); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "exageostat: %v\n", err)
	os.Exit(1)
}

func parseMode(mode string, acc float64, nb int, comp string, workers int) (exago.Config, error) {
	cfg := exago.Config{TileSize: nb, Accuracy: acc, CompressorName: comp, Workers: workers}
	m, err := exago.ModeByName(mode)
	if err != nil {
		return cfg, err
	}
	cfg.Mode = m
	return cfg, nil
}

func parseTheta(s string) (exago.Theta, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return exago.Theta{}, fmt.Errorf("theta must be variance,range,smoothness: %q", s)
	}
	var v [3]float64
	for i, p := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return exago.Theta{}, fmt.Errorf("theta component %d: %w", i, err)
		}
		v[i] = x
	}
	return exago.Theta{Variance: v[0], Range: v[1], Smoothness: v[2]}, nil
}

func runSynthetic(n, nPred int, theta exago.Theta, seed uint64, cfg exago.Config, maxEval int, exportCSV, saveModel string, profiled bool) error {
	fmt.Printf("generating %d locations + %d held out, θ = (%g, %g, %g), seed %d\n",
		n, nPred, theta.Variance, theta.Range, theta.Smoothness, seed)
	syn, err := exago.GenerateSynthetic(n+nPred, nPred, theta, seed)
	if err != nil {
		return err
	}
	if exportCSV != "" {
		if err := exago.WriteCSVFile(exportCSV, exago.Records{Points: syn.Train.Points, Z: syn.Train.Z}); err != nil {
			return err
		}
		fmt.Printf("wrote fit dataset to %s\n", exportCSV)
	}

	t0 := time.Now()
	fit, err := doFit(syn.Train, cfg, exago.FitOptions{MaxEvals: maxEval}, profiled)
	if err != nil {
		return err
	}
	if saveModel != "" {
		if err := saveFit(saveModel, syn.Train, fit, cfg); err != nil {
			return err
		}
		fmt.Printf("wrote model to %s\n", saveModel)
	}
	fmt.Printf("mode %v: θ̂ = (%.4f, %.4f, %.4f)  loglik %.3f  (%d evals, %s)\n",
		cfg.Mode, fit.Theta.Variance, fit.Theta.Range, fit.Theta.Smoothness,
		fit.LogL, fit.Evals, time.Since(t0).Round(time.Millisecond))

	lik, err := exago.LogLikelihood(syn.Train, fit.Theta, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("covariance storage: %.1f MB", float64(lik.Bytes)/1e6)
	if cfg.Mode == exago.TLR {
		fmt.Printf("  (max rank %d, mean rank %.1f at accuracy %.0e)", lik.MaxRank, lik.MeanRank, cfg.Accuracy)
	}
	fmt.Println()

	if nPred > 0 {
		pred, err := exago.Predict(syn.Train, syn.TestPoints, fit.Theta, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("prediction MSE over %d held-out values: %.5f (field variance %.3f)\n",
			nPred, exago.MSE(pred, syn.TestZ), theta.Variance)
	}
	return nil
}

func runDataset(name string, points int, seed uint64, cfg exago.Config, maxEval int) error {
	var (
		ds  *exago.Dataset
		err error
	)
	switch name {
	case "soil":
		ds, err = exago.SoilMoisture(points, seed)
	case "wind":
		ds, err = exago.WindSpeed(points, seed)
	default:
		return fmt.Errorf("unknown dataset %q (want soil or wind)", name)
	}
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: %d regions x %d points\n", ds.Name, len(ds.Regions), points)
	for _, reg := range ds.Regions {
		prob, err := exago.NewProblem(reg.Points, reg.Z, ds.Metric)
		if err != nil {
			return err
		}
		fit, err := exago.Fit(prob, cfg, exago.FitOptions{
			Start:    exago.Theta{Variance: reg.Truth.Variance, Range: reg.Truth.Range, Smoothness: 0.8},
			Upper:    exago.Theta{Variance: 100 * reg.Truth.Variance, Range: 50 * reg.Truth.Range, Smoothness: 3},
			MaxEvals: maxEval,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %s: θ̂ = (%.3f, %.3f, %.3f)   truth (%.3f, %.3f, %.3f)\n",
			reg.Name, fit.Theta.Variance, fit.Theta.Range, fit.Theta.Smoothness,
			reg.Truth.Variance, reg.Truth.Range, reg.Truth.Smoothness)
	}
	return nil
}

// doFit runs the fit, concentrating the variance out when -profiled is set.
func doFit(p *exago.Problem, cfg exago.Config, opts exago.FitOptions, profiled bool) (exago.FitResult, error) {
	opts.Profiled = profiled
	return exago.Fit(p, cfg, opts)
}

// saveFit writes a model document for a completed fit.
func saveFit(path string, p *exago.Problem, fit exago.FitResult, cfg exago.Config) error {
	m := exago.Model{
		Kind:          "matern",
		Theta:         fit.Theta,
		Metric:        exago.MetricName(p.Metric),
		LogLikelihood: fit.LogL,
		Mode:          cfg.Mode.String(),
		N:             p.N(),
	}
	if cfg.Mode == exago.TLR {
		m.Accuracy = cfg.Accuracy
	}
	return exago.SaveModelFile(path, m)
}

// runCSV fits a dataset loaded from disk, optionally holding out nPred
// random points for validation and saving the fitted model.
func runCSV(path, metricName string, nPred int, seed uint64, cfg exago.Config, maxEval int, profiled bool, saveModel string) error {
	rec, err := exago.ReadCSVFile(path)
	if err != nil {
		return err
	}
	metric, err := exago.MetricByName(metricName)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d locations from %s (metric %s)\n", len(rec.Points), path, metricName)
	trainPts, trainZ, testPts, testZ := holdOut(rec, nPred, seed)
	prob, err := exago.NewProblem(trainPts, trainZ, metric)
	if err != nil {
		return err
	}
	t0 := time.Now()
	fit, err := doFit(prob, cfg, exago.FitOptions{MaxEvals: maxEval}, profiled)
	if err != nil {
		return err
	}
	fmt.Printf("mode %v: θ̂ = (%.4f, %.4f, %.4f)  loglik %.3f  (%d evals, %s)\n",
		cfg.Mode, fit.Theta.Variance, fit.Theta.Range, fit.Theta.Smoothness,
		fit.LogL, fit.Evals, time.Since(t0).Round(time.Millisecond))
	if saveModel != "" {
		if err := saveFit(saveModel, prob, fit, cfg); err != nil {
			return err
		}
		fmt.Printf("wrote model to %s\n", saveModel)
	}
	if len(testPts) > 0 {
		pred, err := exago.Predict(prob, testPts, fit.Theta, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("hold-out prediction MSE over %d values: %.5f\n", len(testPts), exago.MSE(pred, testZ))
	}
	return nil
}

// runLoadedModel predicts on a dataset with a previously fitted model.
func runLoadedModel(modelPath, dataPath string, nPred int, seed uint64, cfg exago.Config) error {
	m, err := exago.LoadModelFile(modelPath)
	if err != nil {
		return err
	}
	rec, err := exago.ReadCSVFile(dataPath)
	if err != nil {
		return err
	}
	metric, err := exago.MetricByName(m.Metric)
	if err != nil {
		return err
	}
	if nPred <= 0 || nPred >= len(rec.Points) {
		return fmt.Errorf("predict count %d must be in (0, %d)", nPred, len(rec.Points))
	}
	fmt.Printf("model %s: θ = (%.4f, %.4f, %.4f) fitted in mode %s\n",
		modelPath, m.Theta.Variance, m.Theta.Range, m.Theta.Smoothness, m.Mode)
	trainPts, trainZ, testPts, testZ := holdOut(rec, nPred, seed)
	prob, err := exago.NewProblem(trainPts, trainZ, metric)
	if err != nil {
		return err
	}
	pr, err := exago.PredictWithVariance(prob, testPts, m.Theta, cfg)
	if err != nil {
		return err
	}
	coverage, err := exago.CoverageCheck(pr, testZ)
	if err != nil {
		return err
	}
	fmt.Printf("predicted %d held-out values: MSE %.5f, 95%% interval coverage %.0f%%\n",
		len(testPts), exago.MSE(pr.Mean, testZ), 100*coverage)
	return nil
}

// holdOut splits records into train and a random test subset of size k.
func holdOut(rec exago.Records, k int, seed uint64) (trainPts []exago.Point, trainZ []float64, testPts []exago.Point, testZ []float64) {
	if k <= 0 || k >= len(rec.Points) {
		return rec.Points, rec.Z, nil, nil
	}
	lcg := seed*6364136223846793005 + 1442695040888963407
	isTest := make([]bool, len(rec.Points))
	chosen := 0
	for chosen < k {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		idx := int((lcg >> 33) % uint64(len(rec.Points)))
		if !isTest[idx] {
			isTest[idx] = true
			chosen++
		}
	}
	for i := range rec.Points {
		if isTest[i] {
			testPts = append(testPts, rec.Points[i])
			testZ = append(testZ, rec.Z[i])
		} else {
			trainPts = append(trainPts, rec.Points[i])
			trainZ = append(trainZ, rec.Z[i])
		}
	}
	return
}
